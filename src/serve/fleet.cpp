#include "serve/fleet.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace isp::serve {

const char* to_string(BackendMix mix) {
  switch (mix) {
    case BackendMix::Ftl:
      return "ftl";
    case BackendMix::Zns:
      return "zns";
    case BackendMix::Mixed:
      return "mixed";
  }
  ISP_CHECK(false, "unknown backend mix");
  return "?";
}

FleetConfig FleetConfig::make(std::size_t devices, std::size_t host_lanes,
                              double skew, BackendMix mix) {
  ISP_CHECK(devices >= 1, "a fleet needs at least one device");
  ISP_CHECK(skew >= 0.0 && skew * 3.0 < 1.0,
            "fleet skew must leave the slowest device usable: " << skew);
  FleetConfig config;
  config.host_lanes = host_lanes;
  config.devices.reserve(devices);
  for (std::size_t k = 0; k < devices; ++k) {
    DeviceConfig d;
    d.cse_availability =
        sim::AvailabilitySchedule::constant(1.0 - skew * static_cast<double>(k % 4));
    switch (mix) {
      case BackendMix::Ftl:
        d.backend = flash::BackendKind::Ftl;
        break;
      case BackendMix::Zns:
        d.backend = flash::BackendKind::Zns;
        break;
      case BackendMix::Mixed:
        d.backend =
            (k % 2 == 0) ? flash::BackendKind::Ftl : flash::BackendKind::Zns;
        break;
    }
    config.devices.push_back(std::move(d));
  }
  return config;
}

Fleet::Fleet(FleetConfig config) : config_(std::move(config)) {
  ISP_CHECK(!config_.devices.empty(), "a fleet needs at least one device");
  ISP_CHECK(config_.link_fan_out >= 1, "link fan-out must be at least 1");
  for (const auto& d : config_.devices) {
    ISP_CHECK(d.link_share > 0.0 && d.link_share <= 1.0,
              "device link share out of (0,1]: " << d.link_share);
  }
  busy_until_.assign(lane_count(), SimTime::zero());
  stats_.assign(lane_count(), LaneStats{});
  gate_.assign(lane_count(), SimTime::zero());
  kill_at_.assign(lane_count(), SimTime::infinity());
  epoch_.assign(lane_count(), 0);
  for (std::size_t lane = 0; lane < lane_count(); ++lane) {
    ready_order_.emplace(SimTime::zero(), lane);
  }
  device_busy_sorted_.assign(device_count(), SimTime::zero());
}

const DeviceConfig& Fleet::device(std::size_t lane) const {
  ISP_CHECK(lane < config_.devices.size(), "lane " << lane << " is not a CSD");
  return config_.devices[lane];
}

std::size_t Fleet::busy_devices_after(SimTime t) const {
  // device_busy_sorted_ holds every device lane's busy_until ascending, so
  // the busy-after-t count is the suffix past the first entry > t.
  const auto it = std::upper_bound(device_busy_sorted_.begin(),
                                   device_busy_sorted_.end(), t);
  return static_cast<std::size_t>(device_busy_sorted_.end() - it);
}

std::size_t Fleet::busy_devices_after_scan(SimTime t) const {
  std::size_t n = 0;
  for (std::size_t lane = 0; lane < config_.devices.size(); ++lane) {
    if (busy_until_[lane] > t) ++n;
  }
  return n;
}

double Fleet::contended_link_share(std::size_t lane,
                                   std::size_t busy_devices) const {
  const double provisioned = device(lane).link_share;
  if (busy_devices <= config_.link_fan_out) return provisioned;
  const double contended = static_cast<double>(config_.link_fan_out) /
                           static_cast<double>(busy_devices);
  return provisioned < contended ? provisioned : contended;
}

void Fleet::occupy(std::size_t lane, SimTime start, Seconds service) {
  ISP_CHECK(lane < lane_count(), "lane out of range: " << lane);
  ISP_CHECK(alive(lane), "lane " << lane << " dispatched after its death");
  ISP_CHECK(start >= busy_until_[lane],
            "lane " << lane << " dispatched into its own past");
  ISP_CHECK(service.value() >= 0.0, "negative service time");
  const SimTime old_busy = busy_until_[lane];
  busy_until_[lane] = start + service;
  stats_[lane].jobs += 1;
  stats_[lane].busy += service;
  reindex(lane, old_busy);
}

void Fleet::note_outcome(std::size_t lane, std::uint32_t migrations,
                         std::uint32_t power_losses, std::uint64_t faults) {
  ISP_CHECK(lane < lane_count(), "lane out of range: " << lane);
  stats_[lane].migrations += migrations;
  stats_[lane].power_losses += power_losses;
  stats_[lane].faults += faults;
}

void Fleet::note_storage(std::size_t lane, std::uint64_t host_pages,
                         std::uint64_t internal_pages, std::uint64_t resets,
                         Seconds reclaim_time) {
  ISP_CHECK(lane < lane_count(), "lane out of range: " << lane);
  ISP_CHECK(reclaim_time.value() >= 0.0, "negative reclaim time");
  stats_[lane].storage_host_pages += host_pages;
  stats_[lane].storage_internal_pages += internal_pages;
  stats_[lane].storage_resets += resets;
  stats_[lane].reclaim_time += reclaim_time;
}

void Fleet::mark_dead(std::size_t lane, SimTime at) {
  ISP_CHECK(lane < config_.devices.size(),
            "only CSD lanes die; lane " << lane << " is a host lane");
  if (!alive(lane)) return;  // first kill wins
  const SimTime old_busy = busy_until_[lane];
  stats_[lane].died_at = at;
  // The lane serves nothing past its death; clamp so busy_devices_after
  // never counts a corpse as drawing on the host link.
  if (busy_until_[lane] > at) busy_until_[lane] = at;
  reindex(lane, old_busy);  // death removes the lane from the ready order
}

void Fleet::note_lost(std::size_t lane) {
  ISP_CHECK(lane < config_.devices.size(), "host lanes lose nothing");
  ISP_CHECK(!alive(lane), "lost a job on a living lane");
  stats_[lane].lost_jobs += 1;
}

// ---- Incremental lane-state index (PR 7) ---------------------------------

void Fleet::reindex(std::size_t lane, SimTime old_busy) {
  ready_order_.erase({old_busy, lane});  // no-op if already removed
  if (alive(lane) && busy_until_[lane] < kill_at_[lane]) {
    ready_order_.emplace(busy_until_[lane], lane);
  }
  if (lane < config_.devices.size()) {
    const auto it = std::lower_bound(device_busy_sorted_.begin(),
                                     device_busy_sorted_.end(), old_busy);
    ISP_CHECK(it != device_busy_sorted_.end() && *it == old_busy,
              "device busy index lost lane " << lane);
    device_busy_sorted_.erase(it);
    const SimTime now_busy = busy_until_[lane];
    device_busy_sorted_.insert(
        std::lower_bound(device_busy_sorted_.begin(),
                         device_busy_sorted_.end(), now_busy),
        now_busy);
    ++fleet_epoch_;
  }
  ++epoch_[lane];
}

void Fleet::set_kill_at(std::size_t lane, SimTime at) {
  ISP_CHECK(lane < config_.devices.size(),
            "only CSD lanes die; lane " << lane << " is a host lane");
  if (at >= kill_at_[lane]) return;  // min-fold: the earliest kill wins
  kill_at_[lane] = at;
  if (busy_until_[lane] >= at) {
    // Doomed already: the lane can never start another job.
    ready_order_.erase({busy_until_[lane], lane});
  }
  ++epoch_[lane];
}

void Fleet::set_gate(std::size_t lane, SimTime at) {
  ISP_CHECK(lane < config_.devices.size(),
            "breaker gates are per-device; lane " << lane << " is host");
  if (gate_[lane] == at) return;  // quiet breakers don't invalidate bids
  gate_[lane] = at;
  ++epoch_[lane];
}

SimTime Fleet::earliest_feasible_start(SimTime arrival) const {
  SimTime best = SimTime::infinity();
  for (const auto& [busy, lane] : ready_order_) {
    // Entries are busy-ascending: once a lane's idle instant is at or past
    // the bound, no later entry can start earlier either.
    if (busy >= best) break;
    SimTime start = std::max(busy, arrival);
    start = std::max(start, gate_[lane]);
    if (start >= kill_at_[lane]) continue;
    best = std::min(best, start);
    if (best <= arrival) break;  // can't start before the job exists
  }
  return best;
}

SimTime Fleet::next_free(const std::vector<bool>& claimed) const {
  for (const auto& [busy, lane] : ready_order_) {
    if (!claimed[lane]) return busy;
  }
  return SimTime::infinity();
}

}  // namespace isp::serve
