// Admission control and weighted fair-share scheduling across tenants.
//
// Every tenant owns a bounded FIFO queue.  An arrival either joins its
// tenant's queue or — when the queue is at queue_depth — is rejected with a
// typed Status (StatusCode::Overloaded), never dropped silently: the caller
// gets the status, the tenant's rejected counter advances, and the two
// together must account for every offered job exactly once.
//
// Dispatch order across tenants is weighted fair queueing over *job counts*:
// pick() chooses the non-empty tenant with the smallest virtual finish tag
// (dispatched + 1) / weight, ties broken by tenant index.  Under saturation
// this converges to dispatch shares proportional to the weights within one
// job, and a backlogged tenant can never starve: its tag stays put while
// every dispatch advances someone else's.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace isp::serve {

struct TenantConfig {
  double weight = 1.0;           // fair-share weight, > 0
  std::size_t queue_depth = 8;   // bounded queue; arrivals beyond it reject
  /// Per-job SLO: a job must *start* within `slo` of its arrival.  The
  /// default (infinity) disables deadlines for the tenant entirely.
  Seconds slo = Seconds::infinity();
};

/// One job waiting in (or rejected from) a tenant queue.  The serving loop
/// resolves job_class against its profile table; the controller only routes.
struct QueuedJob {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  std::uint32_t job_class = 0;
  SimTime arrival;
  /// Latest instant the job may start (arrival + tenant SLO); stamped by
  /// offer().  Infinity when the tenant has no SLO.
  SimTime deadline = SimTime::infinity();
  /// Earliest instant the job may start.  Arrivals use their arrival time;
  /// a job re-enqueued after a device death carries the death instant, so a
  /// retry can never start before the failure that caused it.
  SimTime ready;
  /// Serve-layer attempt number, 0 for the first dispatch.  Advanced by the
  /// serving loop on each re-enqueue.
  std::uint32_t attempt = 0;
};

struct TenantStats {
  std::uint64_t offered = 0;     // every arrival, admitted or not
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;    // typed Overloaded rejections
  /// Typed DeadlineExceeded rejections: the queue could have held the job
  /// but no lane could start it before its deadline.
  std::uint64_t deadline_rejected = 0;
  std::uint64_t dispatched = 0;  // attempts actually handed to a lane
  std::uint64_t completed = 0;
  /// Admitted jobs whose deadline expired while they waited in queue.
  std::uint64_t deadline_missed = 0;
  /// Re-enqueues after an in-flight job was lost to a device death.
  std::uint64_t retried = 0;
  /// Admitted jobs abandoned after their retry budget ran out (or no
  /// living lane could ever serve them).
  std::uint64_t retry_exhausted = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(std::vector<TenantConfig> tenants);

  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }

  /// Admit `job` into its tenant's queue.  Rejects with Overloaded when the
  /// queue is full, and with DeadlineExceeded when the tenant has an SLO and
  /// the fleet's earliest feasible start (`earliest_start`, from the caller)
  /// already lies strictly past arrival + slo.  Either way the offered
  /// counter advances exactly once.  On admission the job is stamped with
  /// its deadline and ready time.
  Status offer(const QueuedJob& job,
               SimTime earliest_start = SimTime::zero());

  [[nodiscard]] bool any_queued() const;
  [[nodiscard]] std::size_t queued(std::uint32_t tenant) const;

  /// Weighted fair pick across the non-empty queues (FIFO within a tenant);
  /// nullopt when everything is empty.
  std::optional<QueuedJob> pick();

  void note_completed(std::uint32_t tenant);

  /// Re-enqueue a job lost to a device death at the *head* of its tenant
  /// queue (FIFO order among survivors is preserved; the lost job goes
  /// first).  The queue-depth bound deliberately does not apply: an
  /// admitted job is never silently dropped on re-entry.  Counts one retry.
  void requeue_front(const QueuedJob& job);

  /// Undo a pick() that could not be placed this wave (every living lane
  /// already claimed): the job returns to the head of its queue and the
  /// dispatch is uncounted.
  void return_front(const QueuedJob& job);

  /// A picked job was found past its deadline before reaching a lane: the
  /// dispatch is uncounted and the miss recorded.
  void note_deadline_missed(std::uint32_t tenant);

  /// A job's serve-layer retry budget is gone.  `was_placed` says whether
  /// the final attempt reached a lane (death mid-service) or not (no living
  /// lane left to try — the dispatch is uncounted).
  void note_retry_exhausted(std::uint32_t tenant, bool was_placed);

  [[nodiscard]] const TenantStats& stats(std::uint32_t tenant) const;
  [[nodiscard]] const TenantConfig& tenant(std::uint32_t tenant) const;

 private:
  struct TenantState {
    TenantConfig config;
    std::deque<QueuedJob> queue;
    TenantStats stats;
  };
  std::vector<TenantState> tenants_;
};

}  // namespace isp::serve
