// Admission control and weighted fair-share scheduling across tenants.
//
// Every tenant owns a bounded FIFO queue.  An arrival either joins its
// tenant's queue or — when the queue is at queue_depth — is rejected with a
// typed Status (StatusCode::Overloaded), never dropped silently: the caller
// gets the status, the tenant's rejected counter advances, and the two
// together must account for every offered job exactly once.
//
// Dispatch order across tenants is weighted fair queueing over *job counts*:
// pick() chooses the non-empty tenant with the smallest virtual finish tag
// (dispatched + 1) / weight, ties broken by tenant index.  Under saturation
// this converges to dispatch shares proportional to the weights within one
// job, and a backlogged tenant can never starve: its tag stays put while
// every dispatch advances someone else's.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace isp::serve {

struct TenantConfig {
  double weight = 1.0;           // fair-share weight, > 0
  std::size_t queue_depth = 8;   // bounded queue; arrivals beyond it reject
};

/// One job waiting in (or rejected from) a tenant queue.  The serving loop
/// resolves job_class against its profile table; the controller only routes.
struct QueuedJob {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  std::uint32_t job_class = 0;
  SimTime arrival;
};

struct TenantStats {
  std::uint64_t offered = 0;     // every arrival, admitted or not
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;    // typed Overloaded rejections
  std::uint64_t dispatched = 0;  // handed to a lane by pick()
  std::uint64_t completed = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(std::vector<TenantConfig> tenants);

  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }

  /// Admit `job` into its tenant's queue, or reject with Overloaded when the
  /// queue is full.  Either way the offered counter advances exactly once.
  Status offer(const QueuedJob& job);

  [[nodiscard]] bool any_queued() const;
  [[nodiscard]] std::size_t queued(std::uint32_t tenant) const;

  /// Weighted fair pick across the non-empty queues (FIFO within a tenant);
  /// nullopt when everything is empty.
  std::optional<QueuedJob> pick();

  void note_completed(std::uint32_t tenant);

  [[nodiscard]] const TenantStats& stats(std::uint32_t tenant) const;
  [[nodiscard]] const TenantConfig& tenant(std::uint32_t tenant) const;

 private:
  struct TenantState {
    TenantConfig config;
    std::deque<QueuedJob> queue;
    TenantStats stats;
  };
  std::vector<TenantState> tenants_;
};

}  // namespace isp::serve
