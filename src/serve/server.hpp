// The multi-tenant serving loop: a stream of ActiveCpp jobs over a fleet.
//
// serve() multiplexes `total_jobs` arrivals from `tenants` weighted-fair
// tenants over a Fleet of CSDs plus host fallback lanes, in *fleet virtual
// time*:
//
//   1. Per job class (app × size), one up-front ActiveCpp pipeline run fixes
//      the class profile: the Algorithm-1 plan with its estimates, projected
//      host/CSD latencies, and the Equation-1 data volumes.  Profiles are
//      computed through exec::run_batch.
//   2. Arrivals are a seed-deterministic Poisson process at `offered_load`
//      jobs per virtual second; each arrival is admitted into its tenant's
//      bounded queue or rejected with StatusCode::Overloaded (backpressure —
//      rejections are typed and counted, never silent).
//   3. Dispatch runs in *waves* (the PR 3 pattern): a serial decision phase
//      claims at most one job per lane — weighted-fair pick, then placement
//      by Equation 1 under contention (queue wait + CSE availability + the
//      device's contended link share) across the unclaimed lanes — and only
//      then do worker threads execute the wave's already-scheduled engine
//      simulations through exec::run_batch.  Measured service times advance
//      the lane clocks before the next wave's decisions, so scheduling
//      decisions never depend on thread timing: the report is byte-identical
//      across `jobs` values.
//
// Every dispatched job is a full engine simulation on its own SystemModel
// (device CSE availability rebased to the dispatch instant, link bandwidth
// scaled to the contended share, per-job deterministic fault seed), so
// monitoring, migration, fault handling and power-loss recovery all behave
// exactly as they do in a single-job run.
//
// Fleet failure domains (PR 6).  A CSD lane can die *permanently* at a
// seed-deterministic virtual-time instant (fault::Site::DeviceFailure rate,
// or an explicit kill schedule).  In-flight jobs on the dying lane are lost
// and re-enqueued at the head of their tenant queue with a bounded
// serve-layer retry budget; queued work re-prices over the surviving lanes;
// nothing is dropped silently — the conservation identity
//   admitted == completed + deadline_missed + retry_exhausted
//             + in_flight + queued
// is ISP_CHECKed at every snapshot row.  Placement is health-aware: each
// CSD lane carries a circuit breaker over an exponentially-decayed fault /
// migration score (see serve/breaker.hpp), and tenants may carry a per-job
// start-deadline SLO whose violations are typed (DeadlineExceeded at
// admission, deadline_missed in the dispatch wave).  All of it is virtual
// time bookkeeping in the serial decision/fold phases, so reports stay
// byte-identical across `jobs` values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/exec_mode.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "serve/admission.hpp"
#include "serve/breaker.hpp"
#include "serve/fleet.hpp"

namespace isp::serve {

/// A job class: one (application, size) pair sharing a cached profile.
struct JobClass {
  std::string app = "tpch-q6";
  double size_factor = 0.05;
  /// Persist the app's final outputs to flash: the last producing line is
  /// marked writes_storage and every dispatch drives the lane's storage
  /// backend for real (dataset mount, mapping updates, reclaim stalls) —
  /// the knob that makes FTL and ZNS lanes serve differently.  Off keeps
  /// the class byte-identical to its pre-backend behaviour.
  bool persist = false;
};

/// Observability knobs.  Everything here is bookkeeping in virtual time:
/// enabling or disabling instrumentation never changes a single scheduling
/// decision or service time (the outcome digest is identical either way —
/// asserted by serve_test and gated by bench/obs_overhead).
struct ObsOptions {
  /// Collect the metrics registry, snapshot series and per-job trace data.
  bool enabled = true;
  /// Virtual-time spacing of the snapshot rows.  Widened deterministically
  /// when makespan / interval would exceed max_snapshots.
  Seconds snapshot_interval{0.25};
  std::size_t max_snapshots = 256;
  /// Fault episodes kept per job for the fleet timeline (counters keep
  /// counting past the cap).
  std::size_t max_trace_faults_per_job = 8;
};

/// One scheduled permanent device failure: CSD lane `device` dies at fleet
/// virtual time `at` and never comes back.
struct KillDevice {
  std::size_t device = 0;
  SimTime at;
};

struct ServeConfig {
  FleetConfig fleet = FleetConfig::make(2);
  std::vector<TenantConfig> tenants = {TenantConfig{}, TenantConfig{}};
  std::vector<JobClass> job_classes = {JobClass{}};
  std::uint64_t total_jobs = 32;
  /// Mean arrivals per virtual second (Poisson, seed-deterministic).
  double offered_load = 1.0;
  std::uint64_t seed = 42;
  /// Worker threads for the simulation batches (never affects the report).
  unsigned jobs = 1;
  codegen::ExecMode mode = codegen::ExecMode::CompiledNoCopy;
  /// Fault rates applied to every dispatched job, each with its own derived
  /// deterministic seed.  A DeviceFailure rate here additionally arms a
  /// seed-deterministic first-arrival kill time per device (exponential,
  /// independent hash stream per device) — the chaos-sweep knob.
  fault::FaultConfig fault;
  /// Arm a single whole-device PowerLoss inside this job id's run (the
  /// "mid-sweep crash" regression knob); < 0 disables.
  std::int64_t power_loss_job = -1;
  /// Event boundaries the armed job survives before the power cut.
  std::uint64_t power_loss_after = 8;
  /// Explicit kill schedule (`--kill-device k@t`), min-folded per device
  /// with the DeviceFailure-rate schedule: the earliest kill wins.
  std::vector<KillDevice> kill_devices;
  /// Serve-layer re-dispatches a job lost to a device death may consume
  /// before it is abandoned as retry_exhausted (0 = no retries).
  std::uint32_t retry_budget = 2;
  /// Per-CSD-lane health circuit breaker (health-aware placement).
  BreakerConfig breaker;
  // Hot-path toggles (PR 7).  Both caches are *exact*: reports, metrics and
  // trace artifacts are byte-identical with them on or off (asserted in
  // serve_test, gated in bench/serve_hotpath) — they only change how much
  // work the decision and execution phases redo.
  /// Incremental lane-state index + per-(class, lane) Equation-1 bid cache
  /// in the wave decision phase; off falls back to the O(lanes) scans.
  bool plan_cache = true;
  /// Digest-verified engine-run memo cache: a dispatch whose simulation
  /// inputs (class, lane kind, rebased availability, contended link share,
  /// derived fault seed) exactly match an already-run simulation reuses its
  /// result instead of re-running the engine.
  bool sim_cache = true;
  /// Bound on distinct memoized engine runs (FIFO eviction, deterministic).
  std::size_t sim_cache_capacity = 512;
  /// Extent-shaped storage traffic (PR 10): persisting dispatches issue
  /// their dataset mounts and write-backs through the backends' span fast
  /// path.  Exact like the caches above — the span paths are bit-for-bit
  /// the scalar loops, so every report/metrics/trace artifact is
  /// byte-identical with this on or off.
  bool span_io = true;
  ObsOptions obs;
};

/// One fault-handling episode, lifted to fleet virtual time for the
/// timeline (bounded per job by ObsOptions::max_trace_faults_per_job).
struct FaultEvent {
  fault::Site site = fault::Site::NvmeCommand;
  SimTime time;      // fleet virtual time (job-local time + dispatch start)
  Seconds penalty;
  bool exhausted = false;
};

/// One dispatch attempt lost to a device death: the lane served the job
/// over [start, end) and then died under it (`end` is the death instant).
struct LostAttempt {
  std::uint32_t lane = 0;
  SimTime start;
  SimTime end;
};

/// What happened to one offered job.
struct JobOutcome {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  std::uint32_t job_class = 0;
  SimTime arrival;
  bool rejected = false;  // Overloaded at admission; nothing below is set
  /// Typed DeadlineExceeded at admission: no lane could start the job
  /// before arrival + SLO.  Distinct from `rejected` (Overloaded).
  bool deadline_rejected = false;
  /// Admitted, but the deadline expired while the job waited in queue.
  bool deadline_missed = false;
  /// Admitted, then abandoned after the serve-layer retry budget ran out.
  bool retry_exhausted = false;
  /// Times the job was re-enqueued after losing its lane to a death.
  std::uint32_t retries = 0;
  /// Instant the outcome resolved: completion, deadline expiry, final
  /// loss, or (for rejections) the arrival itself.
  SimTime resolved;
  /// Every dispatch attempt that was killed mid-service, in order.  The
  /// surviving attempt (if any) lives in lane/start/service below.
  std::vector<LostAttempt> lost_attempts;
  std::int32_t lane = -1;
  bool on_host = false;      // host fallback lane
  SimTime start;             // dispatch instant on the lane
  Seconds service;           // measured engine end-to-end time
  Seconds latency;           // completion − arrival (queue wait + service)
  Seconds eq1_profit;        // Equation-1 profit of the chosen device lane
  std::uint32_t migrations = 0;
  std::uint32_t power_losses = 0;
  std::uint64_t faults = 0;

  // Observability detail (filled when ObsOptions::enabled; zero otherwise).
  Seconds queue_wait;            // start − arrival
  Seconds migration_overhead;    // regeneration + live-state movement
  Seconds recovery_overhead;     // power-cycle + FTL remount + re-staging
  Seconds reclaim_time;          // device-side reclaim stall inside service
  std::uint64_t storage_internal_pages = 0;  // reclaim copies + metadata
  std::uint32_t lines_csd = 0;   // per-line placements the job actually ran
  std::uint32_t lines_host = 0;
  std::vector<FaultEvent> fault_events;  // bounded; feeds the fleet timeline

  /// The job ran to completion (admitted, never expired or abandoned).
  [[nodiscard]] bool completed() const {
    return !rejected && !deadline_rejected && !deadline_missed &&
           !retry_exhausted;
  }
};

struct ServeReport {
  // Config echo (what the numbers below were measured under).
  std::size_t fleet_size = 0;
  std::size_t host_lanes = 0;
  std::size_t tenant_count = 0;
  std::uint64_t total_jobs = 0;
  double offered_load = 0.0;
  std::uint64_t seed = 0;

  std::vector<JobOutcome> outcomes;   // indexed by job id
  std::vector<TenantStats> tenants;   // per-tenant accounting
  std::vector<LaneStats> lanes;       // per-lane serving stats

  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t csd_jobs = 0;
  std::uint64_t host_jobs = 0;

  // Failure-domain accounting (all zero in a kill-free, SLO-free run).
  std::uint64_t deadline_rejected = 0;  // DeadlineExceeded at admission
  std::uint64_t deadline_missed = 0;    // expired while queued
  std::uint64_t retry_exhausted = 0;    // abandoned after the retry budget
  std::uint64_t retried = 0;            // total re-enqueues after lane deaths
  std::uint64_t lost_in_flight = 0;     // dispatch attempts killed mid-service
  std::uint64_t devices_failed = 0;     // CSD lanes dead by the makespan

  SimTime makespan;            // last completion (fleet virtual time)
  double throughput = 0.0;     // completed jobs per virtual second
  double rejection_rate = 0.0; // rejected / offered
  Seconds p50_latency;
  Seconds p99_latency;

  /// Per-CSD-lane breaker transition history (indexed by device lane;
  /// empty vectors for lanes whose breaker never moved).
  std::vector<std::vector<BreakerTransition>> breaker_transitions;

  /// FNV-1a digest over every outcome (including retries, lost attempts
  /// and deadline flags), lane counter and breaker transition: the one
  /// word two runs must agree on byte-for-byte (the determinism gate).
  std::uint64_t digest = 0;

  // Hot-path cache statistics (PR 7) — diagnostics only.  Deliberately
  // excluded from to_json(), the digest and the metrics registry so every
  // exported artifact stays byte-identical with the caches on or off.
  std::uint64_t sim_cache_hits = 0;
  std::uint64_t sim_cache_misses = 0;
  std::uint64_t sim_cache_evictions = 0;
  std::uint64_t bid_cache_hits = 0;
  std::uint64_t bid_cache_misses = 0;

  /// Fleet-wide metrics: serve.* (admission, WFQ, lanes, latency
  /// histograms) plus the per-job engine.*, monitor.*, fault.* and ftl.*
  /// counters merged in submission order.  Empty when obs is disabled.
  obs::MetricsRegistry metrics;
  /// Periodic virtual-time snapshots (offered / admitted / rejected /
  /// completed / in_flight / queued per row).  Empty when obs is disabled.
  obs::SnapshotSeries snapshots;

  [[nodiscard]] double utilization(std::size_t lane) const {
    if (makespan.seconds() <= 0.0) return 0.0;
    return lanes[lane].busy.value() / makespan.seconds();
  }

  /// Machine-readable export; byte-identical across `jobs` values.
  [[nodiscard]] std::string to_json() const;
};

/// Run the serving loop to completion (every arrival admitted-and-served or
/// rejected) and aggregate the report.
[[nodiscard]] ServeReport serve(const ServeConfig& config);

}  // namespace isp::serve
