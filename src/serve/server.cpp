#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>

#include "apps/registry.hpp"
#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/pool.hpp"
#include "plan/equation1.hpp"
#include "runtime/active_runtime.hpp"
#include "serve/bid_cache.hpp"
#include "serve/memo.hpp"
#include "serve/observe.hpp"

namespace isp::serve {

namespace {

/// Cached per-class pipeline products: everything placement and dispatch
/// need without re-running the sampling phase per job.
struct Profile {
  explicit Profile(ir::Program p) : program(std::move(p)) {}

  ir::Program program;
  ir::Plan plan;           // Algorithm-1 plan, estimates attached
  ir::Plan host_plan;      // all-host fallback plan
  Seconds host_work;       // planner's T_host
  Seconds csd_work;        // planner's T_csd
  Bytes ds_raw;            // stored input the host path pulls over the link
  Bytes ds_processed;      // intermediates the device ships back
  bool persist = false;    // class drives the lane's storage backend
  /// Flash pages the persisted outputs program per run (before write
  /// amplification) — the Equation-1 persist-cost input.
  std::uint64_t persist_pages = 0;
};

std::vector<std::shared_ptr<const Profile>> build_profiles(
    const ServeConfig& config) {
  return exec::run_batch(
      config.job_classes.size(),
      [&](std::size_t c) -> std::shared_ptr<const Profile> {
        const auto& jc = config.job_classes[c];
        apps::AppConfig ac;
        ac.size_factor = jc.size_factor;
        auto profile = std::make_shared<Profile>(apps::make_app(jc.app, ac));
        if (jc.persist) {
          // Persist the class's final product: the last line that produces
          // anything writes its outputs to flash.  Marked before the
          // profiling run so the cached plan, estimates and projected
          // latencies all price the write-back the dispatches will pay.
          profile->persist = true;
          for (std::size_t i = profile->program.line_count(); i-- > 0;) {
            if (!profile->program.lines()[i].outputs.empty()) {
              profile->program.line_mut(i).writes_storage = true;
              break;
            }
          }
        }

        system::SystemModel system(config.fleet.system);
        runtime::ActiveRuntime active(system);
        runtime::RunConfig rc;
        rc.mode = config.mode;
        const auto result = active.run(profile->program, rc);

        profile->plan = result.plan;
        profile->host_plan =
            ir::Plan::host_only(profile->program.line_count());
        profile->host_work = result.projected_host;
        profile->csd_work = result.projected_csd;
        const auto page_bytes =
            config.fleet.system.csd.nand_geometry.page_bytes.count();
        for (std::size_t i = 0; i < result.plan.estimate.size(); ++i) {
          const auto& est = result.plan.estimate[i];
          profile->ds_raw += est.storage_in;
          if (result.plan.placement[i] == ir::Placement::Csd) {
            const bool boundary =
                i + 1 == result.plan.placement.size() ||
                result.plan.placement[i + 1] == ir::Placement::Host;
            if (boundary) profile->ds_processed += est.d_out;
          }
          if (profile->program.lines()[i].writes_storage) {
            profile->persist_pages +=
                (est.d_out.count() + page_bytes - 1) / page_bytes;
          }
        }
        return profile;
      },
      config.jobs);
}

struct Arrival {
  QueuedJob job;
};

std::vector<Arrival> generate_arrivals(const ServeConfig& config) {
  Rng rng(config.seed);
  std::vector<Arrival> arrivals;
  arrivals.reserve(config.total_jobs);
  SimTime t = SimTime::zero();
  for (std::uint64_t j = 0; j < config.total_jobs; ++j) {
    const double u = rng.next_double();
    t += Seconds{-std::log(1.0 - u) / config.offered_load};
    Arrival a;
    a.job.id = j;
    a.job.tenant = static_cast<std::uint32_t>(
        rng.uniform_u64(0, config.tenants.size() - 1));
    a.job.job_class = static_cast<std::uint32_t>(
        rng.uniform_u64(0, config.job_classes.size() - 1));
    a.job.arrival = t;
    arrivals.push_back(a);
  }
  return arrivals;
}

/// One already-scheduled dispatch: everything the simulation needs is fixed
/// before any worker thread runs.
struct Dispatch {
  QueuedJob job;
  std::size_t lane = 0;
  bool on_host = false;
  /// This dispatch is the lane breaker's HalfOpen probe.
  bool is_probe = false;
  SimTime start;
  double link_share = 1.0;
  /// Storage backend of the dispatch lane (ignored for host lanes).
  flash::BackendKind backend = flash::BackendKind::Ftl;
  Seconds eq1_profit;
  /// The device's availability as seen from `start` — precomputed in the
  /// serial decision phase because rebased()/fraction_at() move the
  /// schedule's query cursor (not safe on the shared fleet copy once worker
  /// threads run).
  sim::AvailabilitySchedule device_schedule;
};

// SimResult lives in serve/memo.hpp (PR 7): a memo hit replays one.

SimResult simulate_dispatch(const ServeConfig& config, const Profile& profile,
                            const Dispatch& d) {
  system::SystemConfig sc = config.fleet.system;
  if (!d.on_host) {
    sc.link.bandwidth = sc.link.bandwidth * d.link_share;
    sc.csd.backend = d.backend;
  }
  system::SystemModel system(sc);

  runtime::RunConfig rc;
  rc.mode = config.mode;
  // Persisting classes drive the storage backend for real: datasets mount
  // as live mappings, outputs go through write()/zone_append, and the
  // backend-internal reclaim traffic stalls the device inside the measured
  // service time.
  rc.engine.drive_storage = profile.persist;
  rc.engine.span_io = config.span_io;
  rc.engine.fault = config.fault;
  rc.engine.fault.seed = splitmix64(config.seed ^ (0xf1ee7000ULL + d.job.id));
  if (config.power_loss_job >= 0 &&
      d.job.id == static_cast<std::uint64_t>(config.power_loss_job)) {
    auto& site = rc.engine.fault
                     .sites[static_cast<std::size_t>(fault::Site::PowerLoss)];
    site.rate = 1.0;
    site.skip_first = config.power_loss_after;
    site.max_faults = 1;
  }
  if (d.on_host) {
    rc.reuse_plan = &profile.host_plan;
    rc.engine.monitoring = false;
    rc.engine.migration = false;
  } else {
    rc.reuse_plan = &profile.plan;
    rc.engine.cse_availability = d.device_schedule;
  }

  SimResult r;
  if (config.obs.enabled) rc.engine.metrics = &r.metrics;

  runtime::ActiveRuntime active(system);
  const auto result = active.run(profile.program, rc);

  r.service = result.report.total;
  r.migrations = result.report.migrations;
  r.power_losses = result.report.power_losses;
  r.faults = result.report.faults.total_injected();
  r.faults_exhausted = result.report.faults.total_exhausted();
  r.storage = result.report.storage;
  if (config.obs.enabled) {
    r.migration_overhead = result.report.migration_overhead;
    r.recovery_overhead = result.report.recovery_overhead;
    for (const auto& line : result.report.lines) {
      if (line.placement == ir::Placement::Csd) {
        ++r.lines_csd;
      } else {
        ++r.lines_host;
      }
    }
    const std::size_t cap = config.obs.max_trace_faults_per_job;
    for (const auto& f : result.report.fault_records) {
      if (r.fault_events.size() >= cap) break;
      r.fault_events.push_back(FaultEvent{.site = f.site,
                                          .time = f.time,
                                          .penalty = f.penalty,
                                          .exhausted = f.exhausted});
    }
  }
  return r;
}

/// The memo-cache key for a dispatch: every simulate_dispatch() input that
/// can vary between dispatches.  The derived fault seed enters the key only
/// when a fault site is actually armed — with all rates zero and no armed
/// power loss the injector never fires, so fault-free jobs of a class share
/// one canonical key (that sharing is where the hit rate comes from).
SimKey make_sim_key(const ServeConfig& config, const Dispatch& d) {
  SimKey key;
  key.job_class = d.job.job_class;
  key.on_host = d.on_host;
  key.backend =
      d.on_host ? 0 : 1 + static_cast<std::uint32_t>(d.backend);
  key.link_share_bits = double_bits(d.on_host ? 1.0 : d.link_share);
  const bool armed =
      config.power_loss_job >= 0 &&
      d.job.id == static_cast<std::uint64_t>(config.power_loss_job);
  if (config.fault.enabled() || armed) {
    key.faulted = true;
    key.fault_seed = splitmix64(config.seed ^ (0xf1ee7000ULL + d.job.id));
    key.power_loss_armed = armed;
    if (armed) key.power_loss_after = config.power_loss_after;
  }
  if (!d.on_host) key.schedule = d.device_schedule;
  return key;
}

/// How a placement attempt ended.
enum class Place {
  Ok,               // out is a valid dispatch
  DeadlineExpired,  // some lane is eligible, but none by the deadline
  NoLane,           // no living, unclaimed, undoomed lane exists
};

/// One eligible lane's bid for the job.
struct LaneBid {
  std::size_t lane = 0;
  bool on_host = false;
  SimTime start;
  SimTime done = SimTime::infinity();
  double share = 1.0;
  Seconds profit;
};

/// Rank the eligible lanes for `job` and decide device vs host fallback by
/// Equation 1 under contention.  Among devices (and among host lanes) the
/// projected completion decides; between the best device and the host path,
/// the sign of S' decides.  Eligibility is health-aware: dead lanes, lanes
/// whose candidate start would land at or past their scheduled death, and
/// lanes holding an unresolved breaker probe are out; an Open breaker
/// delays the candidate start to its cooldown end (making the eventual
/// dispatch the probe) rather than excluding the lane — exclusion could
/// deadlock a fleet whose every device is Open.  If the Equation-1 winner
/// cannot start by the job's deadline, the earliest-starting eligible lane
/// is tried instead; only when even that misses is DeadlineExpired
/// returned.
///
/// Hot path (PR 7): when `bids` is non-null the device loop consults the
/// epoch-versioned bid cache — a lane whose state epochs and candidate
/// start match the cached slot reuses the finish-time integral, contended
/// share and completion projection; the Equation-1 profit additionally
/// revalidates on (arrival, host_wait).  `indexed` selects the O(log n)
/// busy-device count off the fleet's sorted index over the legacy scan.
/// Both are exact: cached and fresh bids are bit-identical.
Place choose_lane(const Fleet& fleet, const std::vector<bool>& claimed,
                  const std::vector<SimTime>& kill_at,
                  const std::vector<CircuitBreaker>& breakers,
                  const std::vector<sim::AvailabilitySchedule>& scheds,
                  const Profile& profile, const QueuedJob& job,
                  BidCache* bids, bool indexed, Dispatch& out) {
  const BytesPerSecond bw = fleet.config().system.link.bandwidth;
  const std::size_t device_count = fleet.device_count();
  const Seconds page_program =
      fleet.config().system.csd.nand_timing.page_program;

  bool have_device = false, have_host = false, have_earliest = false;
  LaneBid best_device, best_host, earliest;
  const auto consider_earliest = [&](const LaneBid& bid) {
    if (!have_earliest || bid.start < earliest.start ||
        (bid.start == earliest.start && bid.lane < earliest.lane)) {
      have_earliest = true;
      earliest = bid;
    }
  };

  // Host lanes first: the fallback's own queue wait belongs on Equation 1's
  // host side, so the devices are priced against the host path the job
  // would actually take.  The winning lane's busy_until rides along so the
  // host-wait term below doesn't re-read it (the PR 7 hoist).
  SimTime best_host_busy = SimTime::zero();
  for (std::size_t lane = fleet.device_count(); lane < fleet.lane_count();
       ++lane) {
    if (claimed[lane]) continue;
    const SimTime busy = fleet.busy_until(lane);
    const SimTime start = std::max(busy, job.ready);
    const LaneBid bid{.lane = lane,
                      .on_host = true,
                      .start = start,
                      .done = start + profile.host_work,
                      .share = 1.0,
                      .profit = Seconds::zero()};
    consider_earliest(bid);
    if (!have_host || bid.done < best_host.done) {
      have_host = true;
      best_host = bid;
      best_host_busy = busy;
    }
  }
  const Seconds host_wait =
      have_host ? std::max(Seconds::zero(), best_host_busy - job.arrival)
                : Seconds::zero();

  for (std::size_t lane = 0; lane < fleet.device_count(); ++lane) {
    if (claimed[lane] || !fleet.alive(lane)) continue;
    const CircuitBreaker& brk = breakers[lane];
    if (brk.state() == BreakerState::HalfOpen && brk.probe_in_flight()) {
      continue;  // one probe at a time
    }
    const SimTime start =
        std::max({fleet.busy_until(lane), job.ready, brk.ready_at()});
    if (start >= kill_at[lane]) continue;  // lane is dead by then

    // Core placement terms: reused when the lane's state epochs and the
    // candidate start still match the cached slot.
    CachedBid* cb = bids != nullptr ? &bids->slot(job.job_class, lane)
                                    : nullptr;
    const bool core_hit = cb != nullptr && cb->core_valid &&
                          cb->lane_epoch == fleet.lane_epoch(lane) &&
                          cb->fleet_epoch == fleet.fleet_epoch() &&
                          cb->start == start;
    SimTime compute_done;
    SimTime done = SimTime::infinity();
    double share = 1.0;
    double avail_eff = 1.0;
    if (core_hit) {
      ++bids->hits;
      if (cb->starved) continue;  // still starved: same schedule, same start
      compute_done = cb->compute_done;
      done = cb->done;
      share = cb->share;
      avail_eff = cb->avail_eff;
    } else {
      // The lane's *derated* schedule: base CSE availability scaled down by
      // the lane's observed reclaim pressure (serial fold phase keeps it in
      // step with occupy(), so the lane epoch covers it).
      const auto& sched = scheds[lane];
      compute_done = sched.finish_time(start, profile.csd_work);
      const bool starved = compute_done == SimTime::infinity();
      if (!starved) {
        const std::size_t busy =
            std::min((indexed ? fleet.busy_devices_after(start)
                              : fleet.busy_devices_after_scan(start)) +
                         1,
                     device_count);
        share = fleet.contended_link_share(lane, busy);
        done = compute_done + profile.ds_processed / (bw * share);
        // Effective CSE fraction over exactly the window the job would
        // occupy.
        avail_eff =
            profile.csd_work.value() > 0.0
                ? profile.csd_work.value() / (compute_done - start).value()
                : 1.0;
      }
      if (cb != nullptr) {
        ++bids->misses;
        cb->core_valid = true;
        cb->profit_valid = false;
        cb->lane_epoch = fleet.lane_epoch(lane);
        cb->fleet_epoch = fleet.fleet_epoch();
        cb->start = start;
        cb->starved = starved;
        cb->compute_done = compute_done;
        cb->done = done;
        cb->share = share;
        cb->avail_eff = avail_eff;
      }
      if (starved) continue;  // starved device
    }

    Seconds profit;
    if (core_hit && cb->profit_valid && cb->arrival == job.arrival &&
        cb->host_wait == host_wait) {
      profit = cb->profit;
    } else {
      const plan::Eq1Terms terms{.ds_raw = profile.ds_raw,
                                 .ct_host = profile.host_work + host_wait,
                                 .ct_device = profile.csd_work,
                                 .ds_processed = profile.ds_processed,
                                 .bw_d2h = bw};
      // Backend-specific device-side terms: the reclaim stall this lane has
      // historically charged per job (FTL GC vs ZNS copy-forward price very
      // differently), and the NAND-program cost of the class's persisted
      // pages inflated by the lane's observed write amplification.  Both
      // fold from completed jobs in the serial phase, so cached bids stay
      // exact (the occupy() epoch bump covers every change).
      const auto& ls = fleet.stats(lane);
      const Seconds reclaim_wait =
          ls.jobs > 0 ? Seconds{ls.reclaim_time.value() /
                                static_cast<double>(ls.jobs)}
                      : Seconds::zero();
      const Seconds persist_cost =
          page_program * (static_cast<double>(profile.persist_pages) *
                          ls.storage_write_amplification());
      // The wait this job would actually experience on the device: the time
      // from its arrival until the lane's queued work drains.
      const plan::Eq1Contention contention{
          .queue_wait =
              std::max(Seconds::zero(), fleet.busy_until(lane) - job.arrival),
          .cse_availability = std::clamp(avail_eff, 1e-6, 1.0),
          .link_share = share,
          .reclaim_wait = reclaim_wait,
          .persist_cost = persist_cost};
      profit = plan::net_profit_under_contention(terms, contention);
      if (cb != nullptr) {
        cb->profit_valid = true;
        cb->arrival = job.arrival;
        cb->host_wait = host_wait;
        cb->profit = profit;
      }
    }
    const LaneBid bid{.lane = lane,
                      .on_host = false,
                      .start = start,
                      .done = done,
                      .share = share,
                      .profit = profit};
    consider_earliest(bid);
    if (!have_device || bid.done < best_device.done) {
      have_device = true;
      best_device = bid;
    }
  }

  if (!have_device && !have_host) return Place::NoLane;
  // A plan with no CSD lines has nothing to offload; don't burn a device.
  const bool host_wins =
      profile.plan.csd_line_count() == 0 ||
      (have_host && (!have_device || best_device.profit.value() <= 0.0));
  LaneBid chosen = (host_wins && have_host) ? best_host : best_device;
  // Deadline-aware fallback: the Equation-1 pick stands unless it would
  // start past the job's deadline and another lane would not.
  if (chosen.start > job.deadline) {
    if (earliest.start > job.deadline) return Place::DeadlineExpired;
    chosen = earliest;
  }
  out.job = job;
  out.lane = chosen.lane;
  out.on_host = chosen.on_host;
  out.start = chosen.start;
  out.link_share = chosen.on_host ? 1.0 : chosen.share;
  out.eq1_profit = have_device ? best_device.profit : Seconds::zero();
  return Place::Ok;
}

}  // namespace

ServeReport serve(const ServeConfig& config) {
  ISP_CHECK(!config.tenants.empty(), "serve needs at least one tenant");
  ISP_CHECK(!config.job_classes.empty(), "serve needs at least one job class");
  ISP_CHECK(config.total_jobs >= 1, "serve needs at least one job");
  ISP_CHECK(config.offered_load > 0.0, "offered load must be positive");

  const auto profiles = build_profiles(config);
  const auto arrivals = generate_arrivals(config);

  Fleet fleet(config.fleet);
  AdmissionController admission(config.tenants);
  ServeReport report;
  report.outcomes.resize(config.total_jobs);

  // Per-device kill schedule, fully known before the loop: the explicit
  // schedule min-folded with a seed-deterministic exponential first arrival
  // per device when a DeviceFailure rate is armed.  Decisions only ever
  // *react* to a death (a lane is skipped once its candidate start reaches
  // its kill instant); they never steer around a future one.
  std::vector<SimTime> kill_at(fleet.device_count(), SimTime::infinity());
  for (const auto& k : config.kill_devices) {
    ISP_CHECK(k.device < fleet.device_count(),
              "kill-device " << k.device << " is not a CSD lane (fleet has "
                             << fleet.device_count() << " devices)");
    ISP_CHECK(k.at.seconds() >= 0.0, "kill-device time must be non-negative");
    kill_at[k.device] = std::min(kill_at[k.device], k.at);
  }
  const double fail_rate = config.fault.rate(fault::Site::DeviceFailure);
  if (fail_rate > 0.0) {
    for (std::size_t k = 0; k < fleet.device_count(); ++k) {
      const double u =
          hash_unit(splitmix64(config.seed ^ (0xDEF1CE00ULL + k)));
      kill_at[k] = std::min(
          kill_at[k], SimTime::zero() + Seconds{-std::log1p(-u) / fail_rate});
    }
  }
  // Mirror the kill schedule into the fleet's incremental index so its
  // ready-order and feasibility queries skip doomed lanes exactly like the
  // legacy scans do.
  for (std::size_t k = 0; k < fleet.device_count(); ++k) {
    if (kill_at[k] < SimTime::infinity()) fleet.set_kill_at(k, kill_at[k]);
  }

  // Hot-path caches (PR 7).  Both are exact — serve() output is
  // byte-identical with them on or off; the flags exist for the benchmark's
  // off-arm and for bisecting.
  const bool hotpath = config.plan_cache;
  std::optional<BidCache> bid_cache;
  if (config.plan_cache) {
    bid_cache.emplace(config.job_classes.size(), fleet.device_count());
  }
  std::optional<SimMemoCache> memo;
  if (config.sim_cache) memo.emplace(config.sim_cache_capacity);

  // Per-device derated CSE schedules: a lane that keeps stalling on backend
  // reclaim (FTL GC / ZNS copy-forward) loses a quantized slice of its CSE
  // capacity for future placements and dispatches.  The derating factor is
  // reclaim-stall time over busy time, quantized to 1/64 and capped at 1/2,
  // updated only in the serial fold phase right after occupy() — so cached
  // bids stay exact and the derated schedule enters both the engine run and
  // the memo-cache key through the schedule itself.
  std::vector<double> lane_derate(fleet.device_count(), 0.0);
  std::vector<sim::AvailabilitySchedule> lane_sched;
  lane_sched.reserve(fleet.device_count());
  for (std::size_t k = 0; k < fleet.device_count(); ++k) {
    lane_sched.push_back(fleet.device(k).cse_availability);
  }
  const auto update_derate = [&](std::size_t lane) {
    const auto& ls = fleet.stats(lane);
    const double busy = ls.busy.value();
    double p = busy > 0.0 ? ls.reclaim_time.value() / busy : 0.0;
    p = std::min(p, 0.5);
    const double q = std::floor(p * 64.0) / 64.0;
    if (q != lane_derate[lane]) {
      lane_derate[lane] = q;
      lane_sched[lane] = fleet.device(lane).cse_availability.scaled(1.0 - q);
    }
  };

  // One health breaker per CSD lane (host lanes never break).
  std::vector<CircuitBreaker> breakers;
  breakers.reserve(fleet.device_count());
  for (std::size_t k = 0; k < fleet.device_count(); ++k) {
    breakers.emplace_back(config.breaker);
  }

  const auto lane_kill = [&](std::size_t lane) {
    return lane < kill_at.size() ? kill_at[lane] : SimTime::infinity();
  };

  // The earliest instant any living lane could start a job arriving now —
  // the admission-time deadline feasibility bound.  Future dispatches only
  // push busy_until later, so this is a true lower bound.  The hot path
  // answers off the fleet's ready-order index (breaker gates are mirrored
  // into it after every breaker mutation below); the legacy scan stays as
  // the plan_cache-off reference.
  const auto earliest_feasible_start = [&](SimTime arrival) {
    if (hotpath) return fleet.earliest_feasible_start(arrival);
    SimTime best = SimTime::infinity();
    for (std::size_t lane = 0; lane < fleet.lane_count(); ++lane) {
      if (!fleet.alive(lane)) continue;
      SimTime start = std::max(fleet.busy_until(lane), arrival);
      if (lane < fleet.device_count()) {
        start = std::max(start, breakers[lane].ready_at());
      }
      if (start >= lane_kill(lane)) continue;
      best = std::min(best, start);
    }
    return best;
  };

  // Deepest each tenant's queue ever got (serial bookkeeping, so the gauge
  // is deterministic by construction).
  std::vector<std::size_t> max_queue(config.tenants.size(), 0);

  std::size_t next_arrival = 0;
  const auto admit_up_to = [&](SimTime t) {
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].job.arrival <= t) {
      const auto& job = arrivals[next_arrival].job;
      auto& outcome = report.outcomes[job.id];
      outcome.id = job.id;
      outcome.tenant = job.tenant;
      outcome.job_class = job.job_class;
      outcome.arrival = job.arrival;
      const Status st =
          admission.offer(job, earliest_feasible_start(job.arrival));
      if (!st.is_ok()) {
        if (st.code() == StatusCode::DeadlineExceeded) {
          outcome.deadline_rejected = true;
        } else {
          outcome.rejected = true;
        }
        outcome.resolved = job.arrival;
      }
      max_queue[job.tenant] =
          std::max(max_queue[job.tenant], admission.queued(job.tenant));
      ++next_arrival;
    }
  };

  // Wave scratch, hoisted so the per-wave cost is an assign(), not an
  // allocation (satellite 6).
  std::vector<Dispatch> wave;
  wave.reserve(fleet.lane_count());
  std::vector<bool> claimed;
  while (true) {
    // Decision phase (serial): claim at most one job per lane.  Every
    // unclaimed lane's busy_until is a *measured* quantity from previous
    // waves, so each decision sees exact state.
    wave.clear();
    claimed.assign(fleet.lane_count(), false);
    while (wave.size() < fleet.lane_count()) {
      SimTime t;
      if (hotpath) {
        // First unclaimed entry in busy_until order — the index already
        // excludes dead and doomed lanes.
        t = fleet.next_free(claimed);
      } else {
        t = SimTime::infinity();
        for (std::size_t lane = 0; lane < fleet.lane_count(); ++lane) {
          if (claimed[lane] || !fleet.alive(lane)) continue;
          // A lane already committed past its death can never free up
          // again; letting it pin `t` would stall admission forever.
          if (fleet.busy_until(lane) >= lane_kill(lane)) continue;
          t = std::min(t, fleet.busy_until(lane));
        }
      }
      admit_up_to(t);
      if (!admission.any_queued()) {
        if (wave.empty() && next_arrival < arrivals.size()) {
          // Idle fleet: jump to the next arrival and retry.
          admit_up_to(arrivals[next_arrival].job.arrival);
          continue;
        }
        break;
      }
      const auto job = admission.pick();
      Dispatch d;
      const Place placed = choose_lane(
          fleet, claimed, kill_at, breakers, lane_sched,
          *profiles[job->job_class], *job, bid_cache ? &*bid_cache : nullptr,
          hotpath, d);
      if (placed == Place::DeadlineExpired) {
        // Skip the expired job loudly: typed per-tenant counter, resolved
        // at the deadline — or at the death that re-enqueued it, when the
        // lane died after the deadline had already passed (the job's last
        // attempt span must not outlive its resolution instant).
        admission.note_deadline_missed(job->tenant);
        auto& outcome = report.outcomes[job->id];
        outcome.deadline_missed = true;
        outcome.resolved = std::max(job->deadline, job->ready);
        continue;
      }
      if (placed == Place::NoLane) {
        if (!wave.empty()) {
          // Every living lane is claimed this wave; try again next wave.
          admission.return_front(*job);
          break;
        }
        // An empty wave saw every lane, so no living lane can ever serve
        // this job (lane starts only move later): abandon it loudly
        // rather than spin.
        admission.note_retry_exhausted(job->tenant, /*was_placed=*/false);
        auto& outcome = report.outcomes[job->id];
        outcome.retry_exhausted = true;
        outcome.resolved = std::max(job->ready, job->arrival);
        continue;
      }
      if (!d.on_host) {
        d.backend = fleet.device(d.lane).backend;
        d.device_schedule = lane_sched[d.lane].rebased(d.start);
        if (breakers[d.lane].state() == BreakerState::Open) {
          // First dispatch at or after the cooldown end is the probe.
          breakers[d.lane].begin_probe(d.start);
          d.is_probe = true;
          fleet.set_gate(d.lane, breakers[d.lane].ready_at());
        }
      }
      claimed[d.lane] = true;
      wave.push_back(std::move(d));
    }
    if (wave.empty()) break;  // queues drained, no arrivals left

    // Execution phase: worker threads run the already-scheduled engine
    // simulations; results come back in submission order.  With the memo
    // cache on, a serial key pass first dedupes the wave against the cache
    // *and against itself* — only distinct missing keys reach the workers,
    // and everything folds back in submission order, so the wave's outputs
    // are byte-identical with the cache off (asserted in serve_test).
    std::vector<SimResult> results(wave.size());
    if (memo) {
      struct Miss {
        SimKey key;
        std::size_t first;  // wave index that owns the fresh engine run
      };
      std::vector<Miss> misses;
      std::vector<std::ptrdiff_t> from_miss(wave.size(), -1);
      for (std::size_t i = 0; i < wave.size(); ++i) {
        SimKey key = make_sim_key(config, wave[i]);
        std::ptrdiff_t pending = -1;
        for (std::size_t m = 0; m < misses.size(); ++m) {
          if (misses[m].key == key) {
            pending = static_cast<std::ptrdiff_t>(m);
            break;
          }
        }
        if (pending >= 0) {  // duplicate within this wave
          from_miss[i] = pending;
          ++report.sim_cache_hits;
          continue;
        }
        if (const SimResult* hit = memo->find(key)) {
          results[i] = *hit;
          ++report.sim_cache_hits;
          continue;
        }
        from_miss[i] = static_cast<std::ptrdiff_t>(misses.size());
        misses.push_back(Miss{std::move(key), i});
        ++report.sim_cache_misses;
      }
      const auto fresh = exec::run_batch(
          misses.size(),
          [&](std::size_t m) {
            const auto& d = wave[misses[m].first];
            return simulate_dispatch(config, *profiles[d.job.job_class], d);
          },
          config.jobs);
      for (std::size_t m = 0; m < misses.size(); ++m) {
        memo->insert(misses[m].key, fresh[m]);
      }
      for (std::size_t i = 0; i < wave.size(); ++i) {
        if (from_miss[i] >= 0) {
          results[i] = fresh[static_cast<std::size_t>(from_miss[i])];
        }
      }
    } else {
      results = exec::run_batch(
          wave.size(),
          [&](std::size_t i) {
            return simulate_dispatch(config, *profiles[wave[i].job.job_class],
                                     wave[i]);
          },
          config.jobs);
    }

    for (std::size_t i = 0; i < wave.size(); ++i) {
      const auto& d = wave[i];
      const auto& r = results[i];
      auto& outcome = report.outcomes[d.job.id];
      const SimTime end = d.start + r.service;
      const SimTime death = d.on_host ? SimTime::infinity() : kill_at[d.lane];
      if (end > death) {
        // The lane died under the job: occupancy truncates at the death,
        // the job's work is lost, and the job either re-enters its tenant
        // queue at the head (ready no earlier than the death it witnessed)
        // or exhausts its serve-layer retry budget.
        fleet.occupy(d.lane, d.start, death - d.start);
        fleet.mark_dead(d.lane, death);
        fleet.note_lost(d.lane);
        if (d.is_probe) {
          breakers[d.lane].abort_probe();
          fleet.set_gate(d.lane, breakers[d.lane].ready_at());
        }
        outcome.lost_attempts.push_back(
            LostAttempt{.lane = static_cast<std::uint32_t>(d.lane),
                        .start = d.start,
                        .end = death});
        report.makespan = std::max(report.makespan, death);
        if (d.job.attempt < config.retry_budget) {
          QueuedJob retry = d.job;
          retry.attempt += 1;
          retry.ready = death;  // a retry cannot start before the failure
          admission.requeue_front(retry);
          outcome.retries += 1;
        } else {
          admission.note_retry_exhausted(d.job.tenant, /*was_placed=*/true);
          outcome.retry_exhausted = true;
          outcome.resolved = death;
        }
        continue;
      }
      fleet.occupy(d.lane, d.start, r.service);
      fleet.note_outcome(d.lane, r.migrations, r.power_losses, r.faults);
      if (r.storage.driven) {
        fleet.note_storage(d.lane, r.storage.host_pages,
                           r.storage.reclaim_pages + r.storage.meta_pages,
                           r.storage.resets, r.storage.reclaim_time);
        // Reclaim pressure derates the lane's CSE for future placements —
        // adjacent to the occupy() epoch bump, so cached bids never see a
        // stale derating.
        if (!d.on_host) update_derate(d.lane);
      }
      admission.note_completed(d.job.tenant);
      if (!d.on_host) {
        // Health feedback: exhausted fault episodes, migrations and power
        // cycles weigh the lane's breaker score; a probe resolves its
        // HalfOpen state instead.
        const double severity = static_cast<double>(r.faults_exhausted) +
                                2.0 * r.migrations + 4.0 * r.power_losses;
        if (d.is_probe) {
          breakers[d.lane].probe_result(end, severity == 0.0);
        } else {
          breakers[d.lane].record_outcome(end, severity);
        }
        // Keep the fleet index's breaker gate in sync (set_gate is a no-op
        // unless ready_at actually moved, so quiet outcomes don't
        // invalidate cached bids).
        fleet.set_gate(d.lane, breakers[d.lane].ready_at());
      }
      outcome.lane = static_cast<std::int32_t>(d.lane);
      outcome.on_host = d.on_host;
      outcome.start = d.start;
      outcome.service = r.service;
      // Queue wait + service, not (start+service)-arrival: the latter loses
      // a ulp when start == arrival and would report latency < service.
      outcome.latency = (d.start - d.job.arrival) + r.service;
      outcome.resolved = end;
      outcome.eq1_profit = d.eq1_profit;
      outcome.migrations = r.migrations;
      outcome.power_losses = r.power_losses;
      outcome.faults = r.faults;
      if (config.obs.enabled) {
        outcome.queue_wait = d.start - d.job.arrival;
        outcome.migration_overhead = r.migration_overhead;
        outcome.recovery_overhead = r.recovery_overhead;
        outcome.reclaim_time = r.storage.reclaim_time;
        outcome.storage_internal_pages =
            r.storage.reclaim_pages + r.storage.meta_pages;
        outcome.lines_csd = r.lines_csd;
        outcome.lines_host = r.lines_host;
        outcome.fault_events = std::move(results[i].fault_events);
        for (auto& f : outcome.fault_events) {
          f.time = d.start + (f.time - SimTime::zero());  // job → fleet time
        }
        // Submission-order fold of the per-job engine registries: merge is
        // associative, so this equals one registry fed serially no matter
        // how many worker threads ran the wave.  Lost attempts are not
        // merged — the registry reflects service that actually completed.
        report.metrics.merge(r.metrics);
      }
      report.makespan = std::max(report.makespan, end);
    }
  }

  // Deaths that happened inside the observed horizon but caught the lane
  // idle still count as failures.
  for (std::size_t k = 0; k < fleet.device_count(); ++k) {
    if (fleet.alive(k) && kill_at[k] <= report.makespan) {
      fleet.mark_dead(k, kill_at[k]);
    }
  }

  // Aggregate.  Every offered job must be accounted exactly once.
  report.fleet_size = fleet.device_count();
  report.host_lanes = config.fleet.host_lanes;
  report.tenant_count = config.tenants.size();
  report.total_jobs = config.total_jobs;
  report.offered_load = config.offered_load;
  report.seed = config.seed;
  if (memo) report.sim_cache_evictions = memo->evictions();
  if (bid_cache) {
    report.bid_cache_hits = bid_cache->hits;
    report.bid_cache_misses = bid_cache->misses;
  }
  std::vector<double> latencies;
  latencies.reserve(report.outcomes.size());
  for (const auto& o : report.outcomes) {
    if (o.rejected) {
      report.rejected += 1;
      continue;
    }
    if (o.deadline_rejected) {
      report.deadline_rejected += 1;
      continue;
    }
    report.admitted += 1;
    report.retried += o.retries;
    report.lost_in_flight += o.lost_attempts.size();
    if (o.deadline_missed) {
      report.deadline_missed += 1;
      continue;
    }
    if (o.retry_exhausted) {
      report.retry_exhausted += 1;
      continue;
    }
    report.completed += 1;
    latencies.push_back(o.latency.value());
    if (o.on_host) {
      report.host_jobs += 1;
    } else {
      report.csd_jobs += 1;
    }
  }
  ISP_CHECK(report.admitted + report.rejected + report.deadline_rejected ==
                config.total_jobs,
            "job accounting leak: " << report.admitted << " + "
                                    << report.rejected << " + "
                                    << report.deadline_rejected << " != "
                                    << config.total_jobs);
  // The failure-domain conservation identity (terminal form: nothing is
  // in flight or queued once the loop drains).
  ISP_CHECK(report.admitted == report.completed + report.deadline_missed +
                                   report.retry_exhausted,
            "admitted jobs leaked: "
                << report.admitted << " != " << report.completed << " + "
                << report.deadline_missed << " + " << report.retry_exhausted);
  report.tenants.reserve(admission.tenant_count());
  for (std::uint32_t t = 0; t < admission.tenant_count(); ++t) {
    report.tenants.push_back(admission.stats(t));
  }
  report.lanes.reserve(fleet.lane_count());
  for (std::size_t lane = 0; lane < fleet.lane_count(); ++lane) {
    report.lanes.push_back(fleet.stats(lane));
    if (lane < fleet.device_count() && !fleet.alive(lane)) {
      report.devices_failed += 1;
    }
  }
  report.breaker_transitions.reserve(fleet.device_count());
  for (std::size_t k = 0; k < fleet.device_count(); ++k) {
    report.breaker_transitions.push_back(breakers[k].transitions());
  }
  if (report.makespan.seconds() > 0.0) {
    report.throughput = static_cast<double>(report.completed) /
                        report.makespan.seconds();
  }
  report.rejection_rate = static_cast<double>(report.rejected) /
                          static_cast<double>(config.total_jobs);
  // Exact nearest-rank percentiles over the sorted sample (const ref — the
  // previous hand-rolled helper took the vector by value, a full copy per
  // call); the obs histogram's bucketed percentile cross-checks these
  // within its error bound in serve_test.
  std::sort(latencies.begin(), latencies.end());
  report.p50_latency = Seconds{obs::percentile_sorted(latencies, 0.50)};
  report.p99_latency = Seconds{obs::percentile_sorted(latencies, 0.99)};

  std::uint64_t h = kFnvOffset;
  for (const auto& o : report.outcomes) {
    h = fnv1a(h, o.id);
    h = fnv1a(h, o.tenant);
    h = fnv1a(h, o.rejected ? 1 : 0);
    h = fnv1a(h, (o.deadline_rejected ? 1 : 0) |
                     (o.deadline_missed ? 2 : 0) |
                     (o.retry_exhausted ? 4 : 0));
    h = fnv1a(h, o.retries);
    h = fnv1a(h, double_bits(o.resolved.seconds()));
    for (const auto& a : o.lost_attempts) {
      h = fnv1a(h, a.lane);
      h = fnv1a(h, double_bits(a.start.seconds()));
      h = fnv1a(h, double_bits(a.end.seconds()));
    }
    h = fnv1a(h, static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(o.lane)));
    h = fnv1a(h, double_bits(o.start.seconds()));
    h = fnv1a(h, double_bits(o.service.value()));
    h = fnv1a(h, o.migrations);
    h = fnv1a(h, o.power_losses);
    h = fnv1a(h, o.faults);
  }
  for (const auto& lane : report.lanes) {
    h = fnv1a(h, lane.jobs);
    h = fnv1a(h, double_bits(lane.busy.value()));
    h = fnv1a(h, lane.lost_jobs);
    h = fnv1a(h, double_bits(lane.died_at.seconds()));
    h = fnv1a(h, lane.storage_host_pages);
    h = fnv1a(h, lane.storage_internal_pages);
    h = fnv1a(h, lane.storage_resets);
    h = fnv1a(h, double_bits(lane.reclaim_time.value()));
  }
  for (const auto& lane_transitions : report.breaker_transitions) {
    h = fnv1a(h, lane_transitions.size());
    for (const auto& tr : lane_transitions) {
      h = fnv1a(h, static_cast<std::uint64_t>(tr.from) * 16 +
                       static_cast<std::uint64_t>(tr.to));
      h = fnv1a(h, double_bits(tr.time.seconds()));
      h = fnv1a(h, double_bits(tr.score));
    }
  }
  report.digest = h;

  // Serve-level metrics and snapshots — all derived serially from the
  // finished aggregates, so they inherit the report's determinism.
  if (config.obs.enabled) {
    auto& m = report.metrics;
    m.counter("serve.offered").add(config.total_jobs);
    m.counter("serve.admitted").add(report.admitted);
    m.counter("serve.rejected").add(report.rejected);
    m.counter("serve.completed").add(report.completed);
    m.counter("serve.jobs.csd").add(report.csd_jobs);
    m.counter("serve.jobs.host").add(report.host_jobs);
    m.counter("serve.deadline_rejected").add(report.deadline_rejected);
    m.counter("serve.deadline_missed").add(report.deadline_missed);
    m.counter("serve.retry_exhausted").add(report.retry_exhausted);
    m.counter("serve.retried").add(report.retried);
    m.counter("serve.lost_in_flight").add(report.lost_in_flight);
    m.counter("serve.devices_failed").add(report.devices_failed);
    auto& latency_h = m.histogram("serve.latency_s");
    auto& service_h = m.histogram("serve.service_s");
    auto& wait_h = m.histogram("serve.queue_wait_s");
    for (const auto& o : report.outcomes) {
      if (o.rejected) continue;
      latency_h.record(o.latency.value());
      service_h.record(o.service.value());
      wait_h.record(o.queue_wait.value());
    }
    for (std::uint32_t t = 0; t < report.tenants.size(); ++t) {
      const auto& ts = report.tenants[t];
      const std::string p = "serve.tenant." + std::to_string(t) + ".";
      m.counter(p + "offered").add(ts.offered);
      m.counter(p + "admitted").add(ts.admitted);
      m.counter(p + "rejected").add(ts.rejected);
      m.counter(p + "deadline_rejected").add(ts.deadline_rejected);
      m.counter(p + "dispatched").add(ts.dispatched);
      m.counter(p + "completed").add(ts.completed);
      m.counter(p + "deadline_missed").add(ts.deadline_missed);
      m.counter(p + "retried").add(ts.retried);
      m.counter(p + "retry_exhausted").add(ts.retry_exhausted);
      m.gauge(p + "wfq_weight").set(config.tenants[t].weight);
      m.gauge(p + "max_queue_depth")
          .set(static_cast<double>(max_queue[t]));
    }
    for (std::size_t lane = 0; lane < report.lanes.size(); ++lane) {
      const auto& ls = report.lanes[lane];
      const std::string p = "serve.lane." + std::to_string(lane) + ".";
      m.counter(p + "jobs").add(ls.jobs);
      m.counter(p + "migrations").add(ls.migrations);
      m.counter(p + "power_losses").add(ls.power_losses);
      m.counter(p + "faults").add(ls.faults);
      m.counter(p + "lost_jobs").add(ls.lost_jobs);
      m.gauge(p + "utilization").set(report.utilization(lane));
      if (ls.died_at < SimTime::infinity()) {
        m.gauge(p + "died_at_s").set(ls.died_at.seconds());
      }
      // Storage-backend activity, only for lanes that actually drove a
      // backend — persist-free runs keep the clean metric schema.
      if (ls.storage_host_pages + ls.storage_internal_pages > 0) {
        m.counter(p + "storage.host_pages").add(ls.storage_host_pages);
        m.counter(p + "storage.internal_pages")
            .add(ls.storage_internal_pages);
        m.counter(p + "storage.resets").add(ls.storage_resets);
        m.gauge(p + "storage.reclaim_time_s").set(ls.reclaim_time.value());
        m.gauge(p + "storage.wa").set(ls.storage_write_amplification());
        if (lane < fleet.device_count()) {
          m.gauge(p + "storage.derate").set(lane_derate[lane]);
        }
      }
    }
    // Breaker histories, only for lanes whose breaker actually moved — no
    // serve.breaker.* noise in a healthy run.
    for (std::size_t k = 0; k < report.breaker_transitions.size(); ++k) {
      const auto& trs = report.breaker_transitions[k];
      if (trs.empty()) continue;
      const std::string p = "serve.breaker." + std::to_string(k) + ".";
      std::uint64_t opened = 0, reclosed = 0;
      for (const auto& tr : trs) {
        if (tr.to == BreakerState::Open) ++opened;
        if (tr.to == BreakerState::Closed) ++reclosed;
      }
      m.counter(p + "transitions").add(trs.size());
      m.counter(p + "opened").add(opened);
      m.counter(p + "reclosed").add(reclosed);
    }
    report.snapshots = build_snapshots(report, config.obs);
  }
  return report;
}

std::string ServeReport::to_json() const {
  std::string out;
  out.reserve(2048);
  char buf[512];
  const auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  add("{\n");
  add("  \"fleet\": %zu,\n", fleet_size);
  add("  \"host_lanes\": %zu,\n", host_lanes);
  add("  \"tenants\": %zu,\n", tenant_count);
  add("  \"total_jobs\": %llu,\n",
      static_cast<unsigned long long>(total_jobs));
  add("  \"offered_load\": %.6f,\n", offered_load);
  add("  \"seed\": %llu,\n", static_cast<unsigned long long>(seed));
  add("  \"admitted\": %llu,\n", static_cast<unsigned long long>(admitted));
  add("  \"rejected\": %llu,\n", static_cast<unsigned long long>(rejected));
  add("  \"completed\": %llu,\n", static_cast<unsigned long long>(completed));
  add("  \"csd_jobs\": %llu,\n", static_cast<unsigned long long>(csd_jobs));
  add("  \"host_jobs\": %llu,\n", static_cast<unsigned long long>(host_jobs));
  add("  \"deadline_rejected\": %llu,\n",
      static_cast<unsigned long long>(deadline_rejected));
  add("  \"deadline_missed\": %llu,\n",
      static_cast<unsigned long long>(deadline_missed));
  add("  \"retry_exhausted\": %llu,\n",
      static_cast<unsigned long long>(retry_exhausted));
  add("  \"retried\": %llu,\n", static_cast<unsigned long long>(retried));
  add("  \"lost_in_flight\": %llu,\n",
      static_cast<unsigned long long>(lost_in_flight));
  add("  \"devices_failed\": %llu,\n",
      static_cast<unsigned long long>(devices_failed));
  add("  \"makespan_s\": %.6f,\n", makespan.seconds());
  add("  \"throughput_jobs_per_s\": %.6f,\n", throughput);
  add("  \"rejection_rate\": %.6f,\n", rejection_rate);
  add("  \"p50_latency_s\": %.6f,\n", p50_latency.value());
  add("  \"p99_latency_s\": %.6f,\n", p99_latency.value());
  out += "  \"per_tenant\": [\n";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const auto& s = tenants[t];
    add("    {\"offered\": %llu, \"admitted\": %llu, \"rejected\": %llu, "
        "\"deadline_rejected\": %llu, \"dispatched\": %llu, "
        "\"completed\": %llu, \"deadline_missed\": %llu, \"retried\": %llu, "
        "\"retry_exhausted\": %llu}%s\n",
        static_cast<unsigned long long>(s.offered),
        static_cast<unsigned long long>(s.admitted),
        static_cast<unsigned long long>(s.rejected),
        static_cast<unsigned long long>(s.deadline_rejected),
        static_cast<unsigned long long>(s.dispatched),
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.deadline_missed),
        static_cast<unsigned long long>(s.retried),
        static_cast<unsigned long long>(s.retry_exhausted),
        t + 1 < tenants.size() ? "," : "");
  }
  out += "  ],\n";
  out += "  \"per_lane\": [\n";
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    const auto& s = lanes[lane];
    // died_at_s is -1 while the lane is alive (JSON has no infinity).
    add("    {\"kind\": \"%s\", \"jobs\": %llu, \"busy_s\": %.6f, "
        "\"utilization\": %.6f, \"migrations\": %u, \"power_losses\": %u, "
        "\"faults\": %llu, \"lost_jobs\": %llu, \"died_at_s\": %.6f}%s\n",
        lane < fleet_size ? "csd" : "host",
        static_cast<unsigned long long>(s.jobs), s.busy.value(),
        utilization(lane), s.migrations, s.power_losses,
        static_cast<unsigned long long>(s.faults),
        static_cast<unsigned long long>(s.lost_jobs),
        s.died_at < SimTime::infinity() ? s.died_at.seconds() : -1.0,
        lane + 1 < lanes.size() ? "," : "");
  }
  out += "  ],\n";
  add("  \"digest\": \"0x%016llx\"\n",
      static_cast<unsigned long long>(digest));
  out += "}\n";
  return out;
}

}  // namespace isp::serve
