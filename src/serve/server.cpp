#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "apps/registry.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/pool.hpp"
#include "plan/equation1.hpp"
#include "runtime/active_runtime.hpp"
#include "serve/observe.hpp"

namespace isp::serve {

namespace {

/// Cached per-class pipeline products: everything placement and dispatch
/// need without re-running the sampling phase per job.
struct Profile {
  explicit Profile(ir::Program p) : program(std::move(p)) {}

  ir::Program program;
  ir::Plan plan;           // Algorithm-1 plan, estimates attached
  ir::Plan host_plan;      // all-host fallback plan
  Seconds host_work;       // planner's T_host
  Seconds csd_work;        // planner's T_csd
  Bytes ds_raw;            // stored input the host path pulls over the link
  Bytes ds_processed;      // intermediates the device ships back
};

std::vector<std::shared_ptr<const Profile>> build_profiles(
    const ServeConfig& config) {
  return exec::run_batch(
      config.job_classes.size(),
      [&](std::size_t c) -> std::shared_ptr<const Profile> {
        const auto& jc = config.job_classes[c];
        apps::AppConfig ac;
        ac.size_factor = jc.size_factor;
        auto profile = std::make_shared<Profile>(apps::make_app(jc.app, ac));

        system::SystemModel system(config.fleet.system);
        runtime::ActiveRuntime active(system);
        runtime::RunConfig rc;
        rc.mode = config.mode;
        const auto result = active.run(profile->program, rc);

        profile->plan = result.plan;
        profile->host_plan =
            ir::Plan::host_only(profile->program.line_count());
        profile->host_work = result.projected_host;
        profile->csd_work = result.projected_csd;
        for (std::size_t i = 0; i < result.plan.estimate.size(); ++i) {
          const auto& est = result.plan.estimate[i];
          profile->ds_raw += est.storage_in;
          if (result.plan.placement[i] == ir::Placement::Csd) {
            const bool boundary =
                i + 1 == result.plan.placement.size() ||
                result.plan.placement[i + 1] == ir::Placement::Host;
            if (boundary) profile->ds_processed += est.d_out;
          }
        }
        return profile;
      },
      config.jobs);
}

struct Arrival {
  QueuedJob job;
};

std::vector<Arrival> generate_arrivals(const ServeConfig& config) {
  Rng rng(config.seed);
  std::vector<Arrival> arrivals;
  arrivals.reserve(config.total_jobs);
  SimTime t = SimTime::zero();
  for (std::uint64_t j = 0; j < config.total_jobs; ++j) {
    const double u = rng.next_double();
    t += Seconds{-std::log(1.0 - u) / config.offered_load};
    Arrival a;
    a.job.id = j;
    a.job.tenant = static_cast<std::uint32_t>(
        rng.uniform_u64(0, config.tenants.size() - 1));
    a.job.job_class = static_cast<std::uint32_t>(
        rng.uniform_u64(0, config.job_classes.size() - 1));
    a.job.arrival = t;
    arrivals.push_back(a);
  }
  return arrivals;
}

/// One already-scheduled dispatch: everything the simulation needs is fixed
/// before any worker thread runs.
struct Dispatch {
  QueuedJob job;
  std::size_t lane = 0;
  bool on_host = false;
  SimTime start;
  double link_share = 1.0;
  Seconds eq1_profit;
  /// The device's availability as seen from `start` — precomputed in the
  /// serial decision phase because rebased()/fraction_at() move the
  /// schedule's query cursor (not safe on the shared fleet copy once worker
  /// threads run).
  sim::AvailabilitySchedule device_schedule;
};

/// What one engine simulation reports back to the serving loop.
struct SimResult {
  Seconds service;
  std::uint32_t migrations = 0;
  std::uint32_t power_losses = 0;
  std::uint64_t faults = 0;
  // Observability detail (ObsOptions::enabled only).  Fault-event times are
  // job-local here; the serial fold shifts them to fleet time.
  Seconds migration_overhead;
  Seconds recovery_overhead;
  std::uint32_t lines_csd = 0;
  std::uint32_t lines_host = 0;
  std::vector<FaultEvent> fault_events;
  /// Per-job engine/monitor/fault/FTL metrics, merged into the report's
  /// registry in submission order (merge is associative, so the fold equals
  /// a serial run regardless of worker count).
  obs::MetricsRegistry metrics;
};

SimResult simulate_dispatch(const ServeConfig& config, const Profile& profile,
                            const Dispatch& d) {
  system::SystemConfig sc = config.fleet.system;
  if (!d.on_host) {
    sc.link.bandwidth = sc.link.bandwidth * d.link_share;
  }
  system::SystemModel system(sc);

  runtime::RunConfig rc;
  rc.mode = config.mode;
  rc.engine.fault = config.fault;
  rc.engine.fault.seed = splitmix64(config.seed ^ (0xf1ee7000ULL + d.job.id));
  if (config.power_loss_job >= 0 &&
      d.job.id == static_cast<std::uint64_t>(config.power_loss_job)) {
    auto& site = rc.engine.fault
                     .sites[static_cast<std::size_t>(fault::Site::PowerLoss)];
    site.rate = 1.0;
    site.skip_first = config.power_loss_after;
    site.max_faults = 1;
  }
  if (d.on_host) {
    rc.reuse_plan = &profile.host_plan;
    rc.engine.monitoring = false;
    rc.engine.migration = false;
  } else {
    rc.reuse_plan = &profile.plan;
    rc.engine.cse_availability = d.device_schedule;
  }

  SimResult r;
  if (config.obs.enabled) rc.engine.metrics = &r.metrics;

  runtime::ActiveRuntime active(system);
  const auto result = active.run(profile.program, rc);

  r.service = result.report.total;
  r.migrations = result.report.migrations;
  r.power_losses = result.report.power_losses;
  r.faults = result.report.faults.total_injected();
  if (config.obs.enabled) {
    r.migration_overhead = result.report.migration_overhead;
    r.recovery_overhead = result.report.recovery_overhead;
    for (const auto& line : result.report.lines) {
      if (line.placement == ir::Placement::Csd) {
        ++r.lines_csd;
      } else {
        ++r.lines_host;
      }
    }
    const std::size_t cap = config.obs.max_trace_faults_per_job;
    for (const auto& f : result.report.fault_records) {
      if (r.fault_events.size() >= cap) break;
      r.fault_events.push_back(FaultEvent{.site = f.site,
                                          .time = f.time,
                                          .penalty = f.penalty,
                                          .exhausted = f.exhausted});
    }
  }
  return r;
}

/// Rank the unclaimed lanes for `job` and decide device vs host fallback by
/// Equation 1 under contention.  Among devices (and among host lanes) the
/// projected completion decides; between the best device and the host path,
/// the sign of S' decides.  Returns false only when every lane is claimed.
bool choose_lane(const Fleet& fleet, const std::vector<bool>& claimed,
                 const Profile& profile, const QueuedJob& job,
                 Dispatch& out) {
  const BytesPerSecond bw = fleet.config().system.link.bandwidth;
  const std::size_t device_count = fleet.device_count();

  bool have_device = false, have_host = false;
  std::size_t best_device = 0, best_host = 0;
  SimTime best_device_done = SimTime::infinity();
  SimTime best_host_done = SimTime::infinity();
  Seconds best_device_profit;
  double best_device_share = 1.0;

  // Host lanes first: the fallback's own queue wait belongs on Equation 1's
  // host side, so the devices are priced against the host path the job
  // would actually take.
  for (std::size_t lane = fleet.device_count(); lane < fleet.lane_count();
       ++lane) {
    if (claimed[lane]) continue;
    const SimTime start = std::max(fleet.busy_until(lane), job.arrival);
    const SimTime done = start + profile.host_work;
    if (!have_host || done < best_host_done) {
      have_host = true;
      best_host = lane;
      best_host_done = done;
    }
  }
  const Seconds host_wait =
      have_host ? std::max(Seconds::zero(),
                           fleet.busy_until(best_host) - job.arrival)
                : Seconds::zero();

  for (std::size_t lane = 0; lane < fleet.device_count(); ++lane) {
    if (claimed[lane]) continue;
    const SimTime start =
        std::max(fleet.busy_until(lane), job.arrival);
    const auto& sched = fleet.device(lane).cse_availability;
    const SimTime compute_done = sched.finish_time(start, profile.csd_work);
    if (compute_done == SimTime::infinity()) continue;  // starved device
    const std::size_t busy =
        std::min(fleet.busy_devices_after(start) + 1, device_count);
    const double share = fleet.contended_link_share(lane, busy);
    const SimTime done =
        compute_done + profile.ds_processed / (bw * share);
    // Effective CSE fraction over exactly the window the job would occupy.
    const double avail_eff =
        profile.csd_work.value() > 0.0
            ? profile.csd_work.value() / (compute_done - start).value()
            : 1.0;
    const plan::Eq1Terms terms{.ds_raw = profile.ds_raw,
                               .ct_host = profile.host_work + host_wait,
                               .ct_device = profile.csd_work,
                               .ds_processed = profile.ds_processed,
                               .bw_d2h = bw};
    // The wait this job would actually experience on the device: the time
    // from its arrival until the lane's queued work drains.
    const plan::Eq1Contention contention{
        .queue_wait =
            std::max(Seconds::zero(), fleet.busy_until(lane) - job.arrival),
        .cse_availability = std::clamp(avail_eff, 1e-6, 1.0),
        .link_share = share};
    const Seconds profit =
        plan::net_profit_under_contention(terms, contention);
    if (!have_device || done < best_device_done) {
      have_device = true;
      best_device = lane;
      best_device_done = done;
      best_device_profit = profit;
      best_device_share = share;
    }
  }

  if (!have_device && !have_host) return false;
  // A plan with no CSD lines has nothing to offload; don't burn a device.
  const bool host_wins =
      profile.plan.csd_line_count() == 0 ||
      (have_host && (!have_device || best_device_profit.value() <= 0.0));
  out.job = job;
  if (host_wins && have_host) {
    out.lane = best_host;
    out.on_host = true;
    out.start = std::max(fleet.busy_until(best_host), job.arrival);
    out.link_share = 1.0;
  } else {
    out.lane = best_device;
    out.on_host = false;
    out.start = std::max(fleet.busy_until(best_device), job.arrival);
    out.link_share = best_device_share;
  }
  out.eq1_profit = have_device ? best_device_profit : Seconds::zero();
  return true;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

}  // namespace

ServeReport serve(const ServeConfig& config) {
  ISP_CHECK(!config.tenants.empty(), "serve needs at least one tenant");
  ISP_CHECK(!config.job_classes.empty(), "serve needs at least one job class");
  ISP_CHECK(config.total_jobs >= 1, "serve needs at least one job");
  ISP_CHECK(config.offered_load > 0.0, "offered load must be positive");

  const auto profiles = build_profiles(config);
  const auto arrivals = generate_arrivals(config);

  Fleet fleet(config.fleet);
  AdmissionController admission(config.tenants);
  ServeReport report;
  report.outcomes.resize(config.total_jobs);

  // Deepest each tenant's queue ever got (serial bookkeeping, so the gauge
  // is deterministic by construction).
  std::vector<std::size_t> max_queue(config.tenants.size(), 0);

  std::size_t next_arrival = 0;
  const auto admit_up_to = [&](SimTime t) {
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].job.arrival <= t) {
      const auto& job = arrivals[next_arrival].job;
      auto& outcome = report.outcomes[job.id];
      outcome.id = job.id;
      outcome.tenant = job.tenant;
      outcome.job_class = job.job_class;
      outcome.arrival = job.arrival;
      outcome.rejected = !admission.offer(job).is_ok();
      max_queue[job.tenant] =
          std::max(max_queue[job.tenant], admission.queued(job.tenant));
      ++next_arrival;
    }
  };

  while (true) {
    // Decision phase (serial): claim at most one job per lane.  Every
    // unclaimed lane's busy_until is a *measured* quantity from previous
    // waves, so each decision sees exact state.
    std::vector<Dispatch> wave;
    std::vector<bool> claimed(fleet.lane_count(), false);
    while (wave.size() < fleet.lane_count()) {
      SimTime t = SimTime::infinity();
      for (std::size_t lane = 0; lane < fleet.lane_count(); ++lane) {
        if (!claimed[lane]) t = std::min(t, fleet.busy_until(lane));
      }
      admit_up_to(t);
      if (!admission.any_queued()) {
        if (wave.empty() && next_arrival < arrivals.size()) {
          // Idle fleet: jump to the next arrival and retry.
          admit_up_to(arrivals[next_arrival].job.arrival);
          continue;
        }
        break;
      }
      const auto job = admission.pick();
      Dispatch d;
      const bool placed =
          choose_lane(fleet, claimed, *profiles[job->job_class], *job, d);
      ISP_CHECK(placed, "wave loop claimed every lane but kept picking");
      if (!d.on_host) {
        d.device_schedule =
            fleet.device(d.lane).cse_availability.rebased(d.start);
      }
      claimed[d.lane] = true;
      wave.push_back(std::move(d));
    }
    if (wave.empty()) break;  // queues drained, no arrivals left

    // Execution phase: worker threads run the already-scheduled engine
    // simulations; results come back in submission order.
    const auto results = exec::run_batch(
        wave.size(),
        [&](std::size_t i) {
          return simulate_dispatch(config, *profiles[wave[i].job.job_class],
                                   wave[i]);
        },
        config.jobs);

    for (std::size_t i = 0; i < wave.size(); ++i) {
      const auto& d = wave[i];
      const auto& r = results[i];
      fleet.occupy(d.lane, d.start, r.service);
      fleet.note_outcome(d.lane, r.migrations, r.power_losses, r.faults);
      admission.note_completed(d.job.tenant);
      auto& outcome = report.outcomes[d.job.id];
      outcome.lane = static_cast<std::int32_t>(d.lane);
      outcome.on_host = d.on_host;
      outcome.start = d.start;
      outcome.service = r.service;
      // Queue wait + service, not (start+service)-arrival: the latter loses
      // a ulp when start == arrival and would report latency < service.
      outcome.latency = (d.start - d.job.arrival) + r.service;
      outcome.eq1_profit = d.eq1_profit;
      outcome.migrations = r.migrations;
      outcome.power_losses = r.power_losses;
      outcome.faults = r.faults;
      if (config.obs.enabled) {
        outcome.queue_wait = d.start - d.job.arrival;
        outcome.migration_overhead = r.migration_overhead;
        outcome.recovery_overhead = r.recovery_overhead;
        outcome.lines_csd = r.lines_csd;
        outcome.lines_host = r.lines_host;
        outcome.fault_events = std::move(results[i].fault_events);
        for (auto& f : outcome.fault_events) {
          f.time = d.start + (f.time - SimTime::zero());  // job → fleet time
        }
        // Submission-order fold of the per-job engine registries: merge is
        // associative, so this equals one registry fed serially no matter
        // how many worker threads ran the wave.
        report.metrics.merge(r.metrics);
      }
      report.makespan = std::max(report.makespan, d.start + r.service);
    }
  }

  // Aggregate.  Every offered job must be accounted exactly once.
  report.fleet_size = fleet.device_count();
  report.host_lanes = config.fleet.host_lanes;
  report.tenant_count = config.tenants.size();
  report.total_jobs = config.total_jobs;
  report.offered_load = config.offered_load;
  report.seed = config.seed;
  std::vector<double> latencies;
  for (const auto& o : report.outcomes) {
    if (o.rejected) {
      report.rejected += 1;
      continue;
    }
    report.admitted += 1;
    report.completed += 1;
    latencies.push_back(o.latency.value());
    if (o.on_host) {
      report.host_jobs += 1;
    } else {
      report.csd_jobs += 1;
    }
  }
  ISP_CHECK(report.admitted + report.rejected == config.total_jobs,
            "job accounting leak: " << report.admitted << " + "
                                    << report.rejected << " != "
                                    << config.total_jobs);
  for (std::uint32_t t = 0; t < admission.tenant_count(); ++t) {
    report.tenants.push_back(admission.stats(t));
  }
  for (std::size_t lane = 0; lane < fleet.lane_count(); ++lane) {
    report.lanes.push_back(fleet.stats(lane));
  }
  if (report.makespan.seconds() > 0.0) {
    report.throughput = static_cast<double>(report.completed) /
                        report.makespan.seconds();
  }
  report.rejection_rate = static_cast<double>(report.rejected) /
                          static_cast<double>(config.total_jobs);
  // Exact nearest-rank percentiles over the sorted sample (const ref — the
  // previous hand-rolled helper took the vector by value, a full copy per
  // call); the obs histogram's bucketed percentile cross-checks these
  // within its error bound in serve_test.
  std::sort(latencies.begin(), latencies.end());
  report.p50_latency = Seconds{obs::percentile_sorted(latencies, 0.50)};
  report.p99_latency = Seconds{obs::percentile_sorted(latencies, 0.99)};

  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& o : report.outcomes) {
    h = fnv_mix(h, o.id);
    h = fnv_mix(h, o.tenant);
    h = fnv_mix(h, o.rejected ? 1 : 0);
    h = fnv_mix(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(o.lane)));
    h = fnv_mix(h, bits(o.start.seconds()));
    h = fnv_mix(h, bits(o.service.value()));
    h = fnv_mix(h, o.migrations);
    h = fnv_mix(h, o.power_losses);
    h = fnv_mix(h, o.faults);
  }
  for (const auto& lane : report.lanes) {
    h = fnv_mix(h, lane.jobs);
    h = fnv_mix(h, bits(lane.busy.value()));
  }
  report.digest = h;

  // Serve-level metrics and snapshots — all derived serially from the
  // finished aggregates, so they inherit the report's determinism.
  if (config.obs.enabled) {
    auto& m = report.metrics;
    m.counter("serve.offered").add(config.total_jobs);
    m.counter("serve.admitted").add(report.admitted);
    m.counter("serve.rejected").add(report.rejected);
    m.counter("serve.completed").add(report.completed);
    m.counter("serve.jobs.csd").add(report.csd_jobs);
    m.counter("serve.jobs.host").add(report.host_jobs);
    auto& latency_h = m.histogram("serve.latency_s");
    auto& service_h = m.histogram("serve.service_s");
    auto& wait_h = m.histogram("serve.queue_wait_s");
    for (const auto& o : report.outcomes) {
      if (o.rejected) continue;
      latency_h.record(o.latency.value());
      service_h.record(o.service.value());
      wait_h.record(o.queue_wait.value());
    }
    for (std::uint32_t t = 0; t < report.tenants.size(); ++t) {
      const auto& ts = report.tenants[t];
      const std::string p = "serve.tenant." + std::to_string(t) + ".";
      m.counter(p + "offered").add(ts.offered);
      m.counter(p + "admitted").add(ts.admitted);
      m.counter(p + "rejected").add(ts.rejected);
      m.counter(p + "dispatched").add(ts.dispatched);
      m.counter(p + "completed").add(ts.completed);
      m.gauge(p + "wfq_weight").set(config.tenants[t].weight);
      m.gauge(p + "max_queue_depth")
          .set(static_cast<double>(max_queue[t]));
    }
    for (std::size_t lane = 0; lane < report.lanes.size(); ++lane) {
      const auto& ls = report.lanes[lane];
      const std::string p = "serve.lane." + std::to_string(lane) + ".";
      m.counter(p + "jobs").add(ls.jobs);
      m.counter(p + "migrations").add(ls.migrations);
      m.counter(p + "power_losses").add(ls.power_losses);
      m.counter(p + "faults").add(ls.faults);
      m.gauge(p + "utilization").set(report.utilization(lane));
    }
    report.snapshots = build_snapshots(report, config.obs);
  }
  return report;
}

std::string ServeReport::to_json() const {
  std::string out;
  out.reserve(2048);
  char buf[256];
  const auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  add("{\n");
  add("  \"fleet\": %zu,\n", fleet_size);
  add("  \"host_lanes\": %zu,\n", host_lanes);
  add("  \"tenants\": %zu,\n", tenant_count);
  add("  \"total_jobs\": %llu,\n",
      static_cast<unsigned long long>(total_jobs));
  add("  \"offered_load\": %.6f,\n", offered_load);
  add("  \"seed\": %llu,\n", static_cast<unsigned long long>(seed));
  add("  \"admitted\": %llu,\n", static_cast<unsigned long long>(admitted));
  add("  \"rejected\": %llu,\n", static_cast<unsigned long long>(rejected));
  add("  \"completed\": %llu,\n", static_cast<unsigned long long>(completed));
  add("  \"csd_jobs\": %llu,\n", static_cast<unsigned long long>(csd_jobs));
  add("  \"host_jobs\": %llu,\n", static_cast<unsigned long long>(host_jobs));
  add("  \"makespan_s\": %.6f,\n", makespan.seconds());
  add("  \"throughput_jobs_per_s\": %.6f,\n", throughput);
  add("  \"rejection_rate\": %.6f,\n", rejection_rate);
  add("  \"p50_latency_s\": %.6f,\n", p50_latency.value());
  add("  \"p99_latency_s\": %.6f,\n", p99_latency.value());
  out += "  \"per_tenant\": [\n";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const auto& s = tenants[t];
    add("    {\"offered\": %llu, \"admitted\": %llu, \"rejected\": %llu, "
        "\"dispatched\": %llu, \"completed\": %llu}%s\n",
        static_cast<unsigned long long>(s.offered),
        static_cast<unsigned long long>(s.admitted),
        static_cast<unsigned long long>(s.rejected),
        static_cast<unsigned long long>(s.dispatched),
        static_cast<unsigned long long>(s.completed),
        t + 1 < tenants.size() ? "," : "");
  }
  out += "  ],\n";
  out += "  \"per_lane\": [\n";
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    const auto& s = lanes[lane];
    add("    {\"kind\": \"%s\", \"jobs\": %llu, \"busy_s\": %.6f, "
        "\"utilization\": %.6f, \"migrations\": %u, \"power_losses\": %u, "
        "\"faults\": %llu}%s\n",
        lane < fleet_size ? "csd" : "host",
        static_cast<unsigned long long>(s.jobs), s.busy.value(),
        utilization(lane), s.migrations, s.power_losses,
        static_cast<unsigned long long>(s.faults),
        lane + 1 < lanes.size() ? "," : "");
  }
  out += "  ],\n";
  add("  \"digest\": \"0x%016llx\"\n",
      static_cast<unsigned long long>(digest));
  out += "}\n";
  return out;
}

}  // namespace isp::serve
