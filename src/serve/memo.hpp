// Digest-verified engine-run memo cache for the serving hot path (PR 7).
//
// Every dispatched job is a full engine simulation, but the simulation is a
// pure function of a small key: the job class (fixes the program, plan and
// profile), host vs device lane, the contended link share the SystemModel
// is built with, the derived per-job fault seed (only when any fault site
// is actually armed — fault-free jobs share one canonical key), the
// power-loss arming parameters, and the device's availability schedule
// rebased to the dispatch instant.  The fleet's default schedules are
// constant, so rebasing lands on the same function for every start — under
// steady load most dispatches repeat a handful of keys and the cache turns
// O(jobs) engine runs into O(distinct keys).
//
// Correctness over speed: lookups bucket by the key's FNV-1a digest but
// *verify the full key* field by field (including every schedule step)
// before returning a hit, so a digest collision degrades to a miss, never a
// wrong result.  All cache operations happen on the serial decision thread
// in wave submission order, and eviction is FIFO by insertion sequence —
// the cache's behaviour is a deterministic function of the dispatch stream,
// which is why serve() stays byte-identical across `--jobs` values and with
// the cache on or off (asserted in serve_test, gated in
// bench/serve_hotpath).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/report.hpp"
#include "serve/server.hpp"
#include "sim/availability.hpp"

namespace isp::serve {

/// What one engine simulation reports back to the serving loop (and what a
/// memo hit replays).  Everything here is job-local: no field depends on
/// the dispatch instant or lane index, which is what makes the result
/// reusable across dispatches with equal keys.
struct SimResult {
  Seconds service;
  std::uint32_t migrations = 0;
  std::uint32_t power_losses = 0;
  std::uint64_t faults = 0;
  std::uint64_t faults_exhausted = 0;  // breaker severity input
  // Observability detail (ObsOptions::enabled only).  Fault-event times are
  // job-local here; the serial fold shifts them to fleet time.
  Seconds migration_overhead;
  Seconds recovery_overhead;
  std::uint32_t lines_csd = 0;
  std::uint32_t lines_host = 0;
  std::vector<FaultEvent> fault_events;
  /// Storage-backend activity the run generated (driven only when the job
  /// class persists its outputs).  Per-run deltas, so a memo hit replays the
  /// same backend work a fresh run would have reported.
  runtime::StorageActivity storage;
  /// Per-job engine/monitor/fault/FTL metrics, merged into the report's
  /// registry in submission order (merge is associative, so the fold equals
  /// a serial run regardless of worker count).
  obs::MetricsRegistry metrics;
};

/// The complete set of inputs that determine a dispatch's engine simulation
/// bit for bit.  Two dispatches with equal keys run byte-identical
/// simulations; anything that could differ (fault seed, armed power loss,
/// link share, availability) is part of the key.
struct SimKey {
  std::uint32_t job_class = 0;
  bool on_host = false;
  /// Storage-backend kind of the dispatch lane: 0 for host lanes, else
  /// 1 + flash::BackendKind.  Two devices that differ only in backend run
  /// different simulations (reclaim model, metadata traffic), so the kind
  /// must split the key — a shared entry would silently replay FTL service
  /// times on a ZNS lane (regression-tested in serve_test).
  std::uint32_t backend = 0;
  /// Bit pattern of the contended link share the SystemModel scales its
  /// link bandwidth by (1.0 for host lanes).
  std::uint64_t link_share_bits = 0;
  /// True when any fault site is armed for this job (a FaultConfig rate
  /// > 0, or this job is the armed power-loss job).  When false the
  /// injector never fires and the per-job seed is irrelevant — all
  /// fault-free jobs of a class share one canonical key (fault_seed 0).
  bool faulted = false;
  std::uint64_t fault_seed = 0;
  bool power_loss_armed = false;
  std::uint64_t power_loss_after = 0;
  /// The device's availability as the engine will see it: already rebased
  /// to the dispatch instant (default-constructed for host lanes).
  sim::AvailabilitySchedule schedule;

  [[nodiscard]] bool operator==(const SimKey& other) const;
  /// FNV-1a over every field — the bucket key.  Hits are still verified
  /// against the full key.
  [[nodiscard]] std::uint64_t digest() const;
};

/// Capacity-bounded memo cache: digest-bucketed, exact-verified, FIFO
/// eviction by insertion order.  Single-threaded by design — the serving
/// loop touches it only from the serial decision/fold phases.
class SimMemoCache {
 public:
  /// `capacity` bounds the number of live entries (>= 1).
  explicit SimMemoCache(std::size_t capacity);

  /// The cached result for `key`, or nullptr.  The pointer is valid only
  /// until the next insert() — callers copy immediately.
  [[nodiscard]] const SimResult* find(const SimKey& key) const;

  /// Memoize `value` under `key`, evicting the oldest entry first when at
  /// capacity.  `key` must not already be present.
  void insert(const SimKey& key, const SimResult& value);

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    SimKey key;
    SimResult value;
    std::uint64_t seq = 0;  // insertion sequence, for FIFO eviction
  };

  std::size_t capacity_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t evictions_ = 0;
  /// digest -> entries with that digest (usually exactly one; a genuine
  /// FNV collision just means a longer verify chain).
  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
  /// Insertion order as (digest, seq) pairs — the FIFO eviction queue.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> fifo_;
};

}  // namespace isp::serve
