#include "plan/device_factor.hpp"

#include "common/error.hpp"
#include "runtime/engine.hpp"

namespace isp::plan {

DeviceFactor device_factor_from_counters(const system::SystemModel& system) {
  const auto& cse = system.csd_device().cse();
  const double per_core = cse.core_speed_vs_host();
  ISP_CHECK(per_core > 0.0, "CSE has no compute capability");
  return DeviceFactor{1.0 / per_core};
}

DeviceFactor device_factor_from_calibration(system::SystemModel& system) {
  // A small, pure-compute calibration program: no storage access, one
  // memory-resident input, a data-parallel loop body.
  ir::Program calib("device-factor-calibration", /*virtual_scale=*/1.0);

  ir::Dataset input;
  input.object.name = "calib_in";
  input.object.location = mem::Location::HostDram;
  input.object.virtual_bytes = 8_MiB;
  input.object.physical.resize_elems<double>(1024);
  input.elem_bytes = sizeof(double);
  calib.add_dataset(std::move(input));

  ir::CodeRegion region;
  region.name = "calibrate";
  region.inputs = {"calib_in"};
  region.outputs = {"calib_out"};
  region.cost.base_cycles = 0.0;
  region.cost.cycles_per_elem = 8.0;
  region.cost.jitter = 0.0;
  region.elem_bytes = sizeof(double);
  // One thread on each side: the measured ratio is the per-core factor.
  region.host_threads = 1;
  region.csd_threads = 1;
  region.kernel = [](ir::KernelCtx& ctx) {
    const auto in = ctx.input(0).physical.as<double>();
    auto& out = ctx.output(0);
    out.physical.resize_elems<double>(1);
    double acc = 0.0;
    for (const double v : in) acc += v * v;
    out.physical.as<double>()[0] = acc;
  };
  calib.add_line(std::move(region));

  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;

  ir::Plan host_plan = ir::Plan::host_only(1);
  auto host_store = calib.make_store();
  const auto host_report =
      runtime::run_program(system, calib, host_plan, codegen::ExecMode::NativeC,
                           options, &host_store);

  ir::Plan csd_plan = ir::Plan::host_only(1);
  csd_plan.placement[0] = ir::Placement::Csd;
  // Timing-only replays need estimates; a functional run does not, and we
  // want the kernel to execute on both sides for faithfulness.
  auto csd_store = calib.make_store();
  const auto csd_report =
      runtime::run_program(system, calib, csd_plan, codegen::ExecMode::NativeC,
                           options, &csd_store);

  const double host_compute = host_report.lines[0].compute.value();
  const double csd_compute = csd_report.lines[0].compute.value();
  ISP_CHECK(host_compute > 0.0 && csd_compute > 0.0,
            "calibration produced zero compute time");
  return DeviceFactor{csd_compute / host_compute};
}

}  // namespace isp::plan
