#include "plan/oracle.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "plan/device_factor.hpp"

namespace isp::plan {

std::vector<ir::LineEstimate> measure_true_estimates(
    system::SystemModel& system, const ir::Program& program) {
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;

  auto store = program.make_store();
  const auto plan = ir::Plan::host_only(program.line_count());
  const auto report = runtime::run_program(
      system, program, plan, codegen::ExecMode::NativeC, options, &store);

  const auto& cse = system.csd_device().cse();
  const double host_clock = system.host_cpu().config().clock.value();

  std::vector<ir::LineEstimate> estimates;
  estimates.reserve(report.lines.size());
  for (std::size_t i = 0; i < report.lines.size(); ++i) {
    const auto& rec = report.lines[i];
    const auto& line = program.lines()[i];
    ir::LineEstimate est;
    est.ct_host = rec.compute;
    // True device/host wall ratio for this line's parallelism.
    const double host_eff = static_cast<double>(
        std::min(line.host_threads, system.host_cpu().config().cores));
    const double csd_eff =
        static_cast<double>(std::min(line.csd_threads, cse.config().cores)) *
        cse.core_speed_vs_host();
    est.ct_device = est.ct_host * (host_eff / csd_eff);
    est.storage_in = rec.storage_bytes;
    est.d_in = rec.in_bytes - rec.storage_bytes;
    est.d_out = rec.out_bytes;
    est.instructions = rec.compute.value() * host_eff * host_clock *
                       line.cost.host_ipc;
    estimates.push_back(est);
  }
  return estimates;
}

OracleResult exhaustive_oracle(system::SystemModel& system,
                               const ir::Program& program,
                               OracleOptions options) {
  const auto n = program.line_count();
  ISP_CHECK(n <= options.max_lines,
            "program too large for exhaustive search: " << n << " lines");

  const auto estimates = measure_true_estimates(system, program);

  runtime::EngineOptions engine_options = options.engine;
  engine_options.run_kernels = false;  // timing-only replays
  engine_options.monitoring = false;
  engine_options.migration = false;

  OracleResult result;
  result.best_latency = Seconds::infinity();

  const std::uint64_t combos = 1ULL << n;
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    ir::Plan plan = ir::Plan::host_only(n);
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1ULL) plan.placement[i] = ir::Placement::Csd;
    }
    plan.estimate = estimates;

    const auto report = runtime::run_program(
        system, program, plan, codegen::ExecMode::NativeC, engine_options);
    ++result.combinations_evaluated;

    if (mask == 0) result.host_only_latency = report.total;
    if (report.total < result.best_latency) {
      result.best_latency = report.total;
      result.best = std::move(plan);
    }
  }
  return result;
}

}  // namespace isp::plan
