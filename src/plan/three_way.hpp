// Three-way placement exploration: host / CSD / GPU (future work, §VI).
//
// Generalises Algorithm 1's projection to a third unit.  Exact dynamic
// programming over the line chain: state = (line index, unit holding the
// running intermediate), cost = compute at that unit + whatever the
// intermediate's move cost is at the boundary.  With three units and one
// linear chain the DP is tiny and *optimal* for the projected model — a
// stronger statement than the greedy gives, which is exactly what an
// exploration of "should ActivePy grow a third target?" wants.
//
// Transfer model per boundary, from the estimates:
//   * storage reads: NAND for the CSD, min(NAND, link) for host and GPU
//     (both sit across the system interconnect, §II-A);
//   * intermediates: free if the consumer stays on the producing unit,
//     one link crossing otherwise (CSD↔host, CSD↔GPU, host↔GPU are all
//     PCIe trips in Figure 1's topology).
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "host/gpu.hpp"
#include "ir/plan.hpp"
#include "ir/program.hpp"
#include "system/model.hpp"

namespace isp::plan {

enum class Unit : std::uint8_t { Host = 0, Csd = 1, Gpu = 2 };

[[nodiscard]] std::string_view to_string(Unit unit);

struct ThreeWayResult {
  std::vector<Unit> placement;   // optimal unit per line (projected)
  Seconds projected;             // optimal projected end-to-end
  Seconds projected_two_way;     // optimum restricted to host/CSD
  Seconds projected_host_only;

  [[nodiscard]] std::size_t count(Unit unit) const;
};

/// Solve the three-way placement DP over `estimates` (from the sampling
/// phase or a measured reference run).
[[nodiscard]] ThreeWayResult explore_three_way(
    const ir::Program& program,
    const std::vector<ir::LineEstimate>& estimates,
    const system::SystemModel& system, const host::Gpu& gpu);

}  // namespace isp::plan
