#include "plan/assignment.hpp"

#include <utility>

#include "common/error.hpp"

namespace isp::plan {

AssignmentResult assign_csd(const ir::Program& program,
                            std::vector<ir::LineEstimate> estimates,
                            const system::SystemModel& system) {
  ISP_CHECK(estimates.size() == program.line_count(),
            "estimates do not match program");

  const auto bw_d2h = system.link().effective_bandwidth();
  const auto bw_storage_host = system.storage_to_host_bandwidth();
  const auto bw_storage_csd = system.storage_to_csd_bandwidth();

  // Complete per-line latency on each side: compute + stored-data access.
  std::vector<Seconds> ct_host(estimates.size());
  std::vector<Seconds> ct_csd(estimates.size());
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    ct_host[i] = estimates[i].ct_host + estimates[i].storage_in /
                                            bw_storage_host;
    ct_csd[i] = estimates[i].ct_device + estimates[i].storage_in /
                                             bw_storage_csd;
  }

  Seconds t_host;
  for (const auto& ct : ct_host) t_host += ct;

  ir::Plan plan = ir::Plan::host_only(program.line_count());

  // Algorithm 1, line by line.
  Seconds t_csd = t_host;  // line 1: T_csd = T_host
  for (std::size_t i = 0; i < estimates.size(); ++i) {  // line 2
    const bool prev_on_csd =
        (i == 0) ||
        plan.placement[i - 1] == ir::Placement::Csd;  // line 3

    Seconds t_if_moved;
    const Seconds d_in_xfer = estimates[i].d_in / bw_d2h;
    const Seconds d_out_xfer = estimates[i].d_out / bw_d2h;
    if (prev_on_csd) {  // line 4
      t_if_moved = t_csd - ct_host[i] + ct_csd[i] - d_in_xfer + d_out_xfer;
    } else {  // line 6
      t_if_moved = t_csd - ct_host[i] + ct_csd[i] + d_in_xfer + d_out_xfer;
    }

    if (t_if_moved < t_csd && t_csd <= t_host) {  // line 8
      plan.placement[i] = ir::Placement::Csd;     // lines 9-10
      t_csd = t_if_moved;                         // line 11
    }
  }

  AssignmentResult out;
  plan.estimate = std::move(estimates);
  out.plan = std::move(plan);
  out.projected_host = t_host;
  out.projected = t_csd;
  return out;
}

}  // namespace isp::plan
