// Equation 1 of the paper: the net profit S of performing a task on the CSD
// instead of the host.
//
//   S = (DS_raw / BW_D2H + CT_host) − (CT_device + DS_processed / BW_D2H)
//
// The task is worth offloading when S > 0.  CT_device here is the *complete*
// device-side cost (including the internal flash read of the raw input),
// matching the paper's formulation where only DS_raw's trip over the host
// link appears explicitly on the host side.
#pragma once

#include "common/units.hpp"

namespace isp::plan {

struct Eq1Terms {
  Bytes ds_raw;           // raw input the host path would pull over the link
  Seconds ct_host;        // host compute (input already in main memory)
  Seconds ct_device;      // full device-side latency for the same region
  Bytes ds_processed;     // intermediate the device ships back
  BytesPerSecond bw_d2h;  // host link bandwidth
};

/// Net profit S; positive means the CSD placement wins.
[[nodiscard]] Seconds net_profit(const Eq1Terms& terms);

/// Convenience predicate: S > 0.
[[nodiscard]] bool profitable(const Eq1Terms& terms);

/// Contention a *fleet* device adds to Equation 1.  The per-run form above
/// assumes an idle device and a dedicated link; under multi-tenant serving a
/// candidate device has queued work ahead of the job, a CSE that other
/// activity (co-tenants, GC) has throttled, and a host link it shares with
/// its siblings' traffic.  All three stretch the device side only — the host
/// path still pays the raw trip over the same shared link.
struct Eq1Contention {
  /// Work queued on the device that must drain before this job starts.
  Seconds queue_wait;
  /// Fraction of CSE capacity left for this job, in (0, 1].
  double cse_availability = 1.0;
  /// Fraction of the host link's bandwidth this device's traffic gets,
  /// in (0, 1].
  double link_share = 1.0;
  /// Storage-management stall the job is expected to ride out on the
  /// device: backend reclaim work (FTL GC relocation / ZNS copy-forward
  /// plus metadata programs) that its own persisted writes will trigger or
  /// contend with.  Backend-specific: a zoned device with host-coordinated
  /// reclaim prices a smaller term than a page-mapped FTL under the same
  /// write mix.  Zero for jobs that persist nothing.
  Seconds reclaim_wait;
  /// Device-side cost of pushing the job's persisted output through the
  /// backend's write path (appends × write amplification at NAND program
  /// cost).  Zero for jobs that persist nothing.
  Seconds persist_cost;
};

/// Equation 1 with the device-side terms inflated by contention:
///
///   S' = (DS_raw / BW' + CT_host)
///        − (W_queue + W_reclaim + C_persist + CT_device / A_cse
///           + DS_processed / BW')
///
/// with BW' = BW_D2H × link_share and A_cse the CSE fraction left.  Collapses
/// to net_profit() when the contention terms are neutral.
[[nodiscard]] Seconds net_profit_under_contention(const Eq1Terms& terms,
                                                  const Eq1Contention& c);

/// The two sides of S' exposed separately, so a caller that caches one side
/// (the serving layer's bid cache re-prices a lane's bid when only the
/// host-side wait changed) can recombine without drifting from the one-shot
/// form: net_profit_under_contention() is exactly
/// host_side_cost() − device_side_cost(), bit for bit (asserted in
/// plan_test).  Argument checks live on net_profit_under_contention();
/// these are the raw arithmetic.
[[nodiscard]] Seconds host_side_cost(const Eq1Terms& terms,
                                     const Eq1Contention& c);
[[nodiscard]] Seconds device_side_cost(const Eq1Terms& terms,
                                       const Eq1Contention& c);

}  // namespace isp::plan
