// Equation 1 of the paper: the net profit S of performing a task on the CSD
// instead of the host.
//
//   S = (DS_raw / BW_D2H + CT_host) − (CT_device + DS_processed / BW_D2H)
//
// The task is worth offloading when S > 0.  CT_device here is the *complete*
// device-side cost (including the internal flash read of the raw input),
// matching the paper's formulation where only DS_raw's trip over the host
// link appears explicitly on the host side.
#pragma once

#include "common/units.hpp"

namespace isp::plan {

struct Eq1Terms {
  Bytes ds_raw;           // raw input the host path would pull over the link
  Seconds ct_host;        // host compute (input already in main memory)
  Seconds ct_device;      // full device-side latency for the same region
  Bytes ds_processed;     // intermediate the device ships back
  BytesPerSecond bw_d2h;  // host link bandwidth
};

/// Net profit S; positive means the CSD placement wins.
[[nodiscard]] Seconds net_profit(const Eq1Terms& terms);

/// Convenience predicate: S > 0.
[[nodiscard]] bool profitable(const Eq1Terms& terms);

}  // namespace isp::plan
