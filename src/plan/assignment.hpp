// Algorithm 1 of the paper: greedy CSD code assignment.
//
// Starting from the all-host program (T_csd = T_host), every line is tried
// on the CSD in order.  Moving line i to the CSD replaces its host cost with
// its device cost and adjusts the boundary-transfer terms: if the previous
// line already runs on the CSD, line i's input no longer crosses the link
// (the −D_in/BW term removes the charge the previous line's +D_out/BW
// added); otherwise both the input and output crossings are paid.  The move
// is kept when it strictly shortens the projected time (and the projection
// never exceeds the host-only time — line 8's T_csd ≤ T_host guard).
//
// CT terms are complete placement-side latencies: extrapolated compute plus
// the stored-data read at that side's bandwidth — which is how the 9 GB/s
// internal versus 5 GB/s external asymmetry enters the decision.
#pragma once

#include <vector>

#include "ir/plan.hpp"
#include "ir/program.hpp"
#include "system/model.hpp"

namespace isp::plan {

struct AssignmentResult {
  ir::Plan plan;            // placements plus the estimates that drove them
  Seconds projected_host;   // T_host: projected all-host latency
  Seconds projected;        // T_csd after assignment
};

[[nodiscard]] AssignmentResult assign_csd(
    const ir::Program& program, std::vector<ir::LineEstimate> estimates,
    const system::SystemModel& system);

}  // namespace isp::plan
