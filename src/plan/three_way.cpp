#include "plan/three_way.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace isp::plan {

std::string_view to_string(Unit unit) {
  switch (unit) {
    case Unit::Host:
      return "host";
    case Unit::Csd:
      return "csd";
    case Unit::Gpu:
      return "gpu";
  }
  return "?";
}

std::size_t ThreeWayResult::count(Unit unit) const {
  std::size_t n = 0;
  for (const auto u : placement) n += (u == unit) ? 1 : 0;
  return n;
}

namespace {

constexpr std::size_t kUnits = 3;

struct Dp {
  std::array<double, kUnits> cost;
  std::array<std::array<std::uint8_t, kUnits>, 1> unused{};
};

double line_cost(const ir::Program& program,
                 const std::vector<ir::LineEstimate>& estimates,
                 const system::SystemModel& system, const host::Gpu& gpu,
                 std::size_t i, Unit unit) {
  const auto& est = estimates[i];
  const auto& line = program.lines()[i];
  const double link = system.link().effective_bandwidth().value();
  const double nand = system.storage_to_csd_bandwidth().value();
  const double host_storage = system.storage_to_host_bandwidth().value();

  double compute = 0.0;
  double storage = 0.0;
  switch (unit) {
    case Unit::Host:
      compute = est.ct_host.value();
      storage = est.storage_in.as_double() / host_storage;
      break;
    case Unit::Csd:
      compute = est.ct_device.value();
      storage = est.storage_in.as_double() / nand;
      break;
    case Unit::Gpu: {
      // Work in host-core-seconds: undo the host wall's thread division.
      const double host_eff = static_cast<double>(
          std::min(line.host_threads, system.host_cpu().config().cores));
      const Seconds work{est.ct_host.value() * host_eff};
      compute = gpu.compute_seconds(work, line.csd_threads).value();
      // Raw data crosses the interconnect to the GPU, like the host path.
      storage = est.storage_in.as_double() / std::min(host_storage, link);
      break;
    }
  }
  return compute + storage;
}

}  // namespace

ThreeWayResult explore_three_way(
    const ir::Program& program,
    const std::vector<ir::LineEstimate>& estimates,
    const system::SystemModel& system, const host::Gpu& gpu) {
  const std::size_t n = program.line_count();
  ISP_CHECK(estimates.size() == n, "estimates do not match program");
  ISP_CHECK(n > 0, "empty program");
  const double link = system.link().effective_bandwidth().value();

  const auto solve = [&](bool allow_gpu) {
    // dp[u]: best projected time with line i placed on unit u.
    std::array<double, kUnits> dp{};
    std::vector<std::array<std::uint8_t, kUnits>> parent(
        n, std::array<std::uint8_t, kUnits>{});
    const double inf = std::numeric_limits<double>::infinity();

    for (std::size_t i = 0; i < n; ++i) {
      std::array<double, kUnits> next{};
      for (std::size_t u = 0; u < kUnits; ++u) {
        if (!allow_gpu && u == static_cast<std::size_t>(Unit::Gpu)) {
          next[u] = inf;
          continue;
        }
        const double own = line_cost(program, estimates, system, gpu, i,
                                     static_cast<Unit>(u));
        if (i == 0) {
          next[u] = own;  // inputs come from storage; no boundary yet
          continue;
        }
        double best = inf;
        std::uint8_t best_prev = 0;
        for (std::size_t p = 0; p < kUnits; ++p) {
          if (dp[p] == inf) continue;
          const double boundary =
              (p == u) ? 0.0
                       : estimates[i].d_in.as_double() / link;
          const double candidate = dp[p] + boundary + own;
          if (candidate < best) {
            best = candidate;
            best_prev = static_cast<std::uint8_t>(p);
          }
        }
        next[u] = best;
        parent[i][u] = best_prev;
      }
      dp = next;
    }

    // Results end in host memory.
    for (std::size_t u = 0; u < kUnits; ++u) {
      if (u != static_cast<std::size_t>(Unit::Host) && dp[u] < inf) {
        dp[u] += estimates[n - 1].d_out.as_double() / link;
      }
    }

    std::size_t last = 0;
    for (std::size_t u = 1; u < kUnits; ++u) {
      if (dp[u] < dp[last]) last = u;
    }
    std::vector<Unit> placement(n, Unit::Host);
    std::size_t cursor = last;
    for (std::size_t i = n; i-- > 0;) {
      placement[i] = static_cast<Unit>(cursor);
      cursor = parent[i][cursor];
    }
    return std::make_pair(dp[last], placement);
  };

  ThreeWayResult result;
  auto [three_cost, three_placement] = solve(/*allow_gpu=*/true);
  auto [two_cost, two_placement] = solve(/*allow_gpu=*/false);
  result.placement = std::move(three_placement);
  result.projected = Seconds{three_cost};
  result.projected_two_way = Seconds{two_cost};

  double host_only = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    host_only += line_cost(program, estimates, system, gpu, i, Unit::Host);
  }
  result.projected_host_only = Seconds{host_only};
  return result;
}

}  // namespace isp::plan
