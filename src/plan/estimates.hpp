// Building per-line estimates at raw input size from the sampling phase.
//
// For every line the fitter selects complexity curves for (a) compute time
// versus input elements and (b) output volume versus input elements, then
// extrapolates both to the raw size.  Raw input volumes propagate
// transitively: a line fed by another line's output uses the *predicted*
// producer volume — which is how a mis-fit on one line (the paper's CSR
// construction case) distorts everything downstream, exactly as §V reports.
#pragma once

#include <vector>

#include "ir/plan.hpp"
#include "ir/program.hpp"
#include "plan/device_factor.hpp"
#include "profile/line_profiler.hpp"
#include "system/model.hpp"

namespace isp::plan {

struct EstimateDiagnostics {
  /// Per line: predicted output volume at raw size (for the estimation-
  /// accuracy experiment, E5).
  std::vector<Bytes> predicted_out;
  std::vector<Bytes> predicted_in;
};

/// Derive raw-size LineEstimates from sample statistics.
[[nodiscard]] std::vector<ir::LineEstimate> build_estimates(
    const ir::Program& program, const profile::SampleSet& samples,
    const DeviceFactor& factor, const system::SystemModel& system,
    EstimateDiagnostics* diagnostics = nullptr);

}  // namespace isp::plan
