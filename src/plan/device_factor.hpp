// The constant factor C: CT_device = C × CT_host (§III-A).
//
// ActivePy derives C either by querying the CSD's performance counters
// (retired instructions per cycle, core count, clock) or — when counters are
// unavailable — by running a small calibration program on both the CSD and
// the host and taking the latency ratio.  Both paths are implemented; they
// agree to within the calibration kernel's jitter.
#pragma once

#include "system/model.hpp"

namespace isp::plan {

struct DeviceFactor {
  /// Per-core ratio: one CSE core takes c × the time of one host core.
  /// The planner scales by each line's host/CSE parallelism (the generated
  /// firmware's data-parallel fan-out is a static property of the code
  /// ActivePy itself emits, so the runtime knows it exactly).
  double c = 1.0;
};

/// Derive C from the device's architectural counters (clock ratio × relative
/// IPC — what "retired instructions per cycle" queries give you).
[[nodiscard]] DeviceFactor device_factor_from_counters(
    const system::SystemModel& system);

/// Derive C by running a small calibration kernel on both units and timing
/// it (used when performance counters are not exposed).
[[nodiscard]] DeviceFactor device_factor_from_calibration(
    system::SystemModel& system);

}  // namespace isp::plan
