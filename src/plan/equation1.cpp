#include "plan/equation1.hpp"

#include "common/error.hpp"

namespace isp::plan {

Seconds net_profit(const Eq1Terms& terms) {
  ISP_CHECK(terms.bw_d2h.value() > 0.0, "bandwidth must be positive");
  const Seconds host_side = terms.ds_raw / terms.bw_d2h + terms.ct_host;
  const Seconds device_side =
      terms.ct_device + terms.ds_processed / terms.bw_d2h;
  return host_side - device_side;
}

bool profitable(const Eq1Terms& terms) {
  return net_profit(terms).value() > 0.0;
}

}  // namespace isp::plan
