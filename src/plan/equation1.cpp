#include "plan/equation1.hpp"

#include "common/error.hpp"

namespace isp::plan {

Seconds net_profit(const Eq1Terms& terms) {
  ISP_CHECK(terms.bw_d2h.value() > 0.0, "bandwidth must be positive");
  const Seconds host_side = terms.ds_raw / terms.bw_d2h + terms.ct_host;
  const Seconds device_side =
      terms.ct_device + terms.ds_processed / terms.bw_d2h;
  return host_side - device_side;
}

bool profitable(const Eq1Terms& terms) {
  return net_profit(terms).value() > 0.0;
}

Seconds host_side_cost(const Eq1Terms& terms, const Eq1Contention& c) {
  const BytesPerSecond bw = terms.bw_d2h * c.link_share;
  return terms.ds_raw / bw + terms.ct_host;
}

Seconds device_side_cost(const Eq1Terms& terms, const Eq1Contention& c) {
  const BytesPerSecond bw = terms.bw_d2h * c.link_share;
  return c.queue_wait + c.reclaim_wait + c.persist_cost +
         terms.ct_device / c.cse_availability + terms.ds_processed / bw;
}

Seconds net_profit_under_contention(const Eq1Terms& terms,
                                    const Eq1Contention& c) {
  ISP_CHECK(terms.bw_d2h.value() > 0.0, "bandwidth must be positive");
  ISP_CHECK(c.queue_wait.value() >= 0.0, "queue wait must be non-negative");
  ISP_CHECK(c.cse_availability > 0.0 && c.cse_availability <= 1.0,
            "CSE availability out of (0,1]: " << c.cse_availability);
  ISP_CHECK(c.link_share > 0.0 && c.link_share <= 1.0,
            "link share out of (0,1]: " << c.link_share);
  ISP_CHECK(c.reclaim_wait.value() >= 0.0,
            "reclaim wait must be non-negative");
  ISP_CHECK(c.persist_cost.value() >= 0.0,
            "persist cost must be non-negative");
  return host_side_cost(terms, c) - device_side_cost(terms, c);
}

}  // namespace isp::plan
