#include "plan/estimates.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "fit/curve_fit.hpp"

namespace isp::plan {

std::vector<ir::LineEstimate> build_estimates(
    const ir::Program& program, const profile::SampleSet& samples,
    const DeviceFactor& factor, const system::SystemModel& system,
    EstimateDiagnostics* diagnostics) {
  ISP_CHECK(samples.lines.size() == program.line_count(),
            "sample set does not match program");
  ISP_CHECK(factor.c > 0.0, "device factor must be positive");

  // Predicted raw volume of every object: datasets are known exactly,
  // intermediates are extrapolated from their producer's fit.
  std::map<std::string, Bytes> predicted;
  std::map<std::string, bool> on_storage;
  for (const auto& d : program.datasets()) {
    predicted[d.object.name] = d.object.virtual_bytes;
    on_storage[d.object.name] = d.object.starts_on_storage();
  }

  const double host_clock = system.host_cpu().config().clock.value();
  const auto host_cores = system.host_cpu().config().cores;
  const auto cse_cores = system.csd_device().cse().config().cores;

  std::vector<ir::LineEstimate> estimates;
  estimates.reserve(program.line_count());
  if (diagnostics != nullptr) {
    diagnostics->predicted_out.clear();
    diagnostics->predicted_in.clear();
  }

  for (std::size_t i = 0; i < program.line_count(); ++i) {
    const auto& line = program.lines()[i];
    const auto& pts = samples.lines[i].points;
    ISP_CHECK(pts.size() >= 2, "line '" << line.name
                                        << "' has too few sample points");

    std::vector<double> n, t, out;
    n.reserve(pts.size());
    for (const auto& p : pts) {
      n.push_back(p.n_elems);
      t.push_back(p.compute.value());
      out.push_back(p.out_bytes.as_double());
    }
    const auto fit_time = fit::fit_best(n, t);
    const auto fit_out = fit::fit_best(n, out);

    // Raw input volume of this line, transitively predicted.
    Bytes in_raw{0};
    Bytes storage_raw{0};
    for (const auto& name : line.inputs) {
      const auto it = predicted.find(name);
      ISP_CHECK(it != predicted.end(),
                "no prediction for input '" << name << "'");
      in_raw += it->second;
      if (on_storage[name]) storage_raw += it->second;
    }
    const double n_raw = line.elems_for(in_raw);

    ir::LineEstimate est;
    est.ct_host = Seconds{fit_time.predict(n_raw)};
    // Wall-time conversion: the measured host time used host_threads cores;
    // the generated firmware spreads the line over csd_threads CSE cores,
    // each `factor.c` slower than one host core.
    const double host_eff =
        static_cast<double>(std::min(line.host_threads, host_cores));
    const double csd_eff =
        static_cast<double>(std::min(line.csd_threads, cse_cores));
    est.ct_device = est.ct_host * (factor.c * host_eff / csd_eff);
    est.storage_in = storage_raw;
    est.d_in = in_raw - storage_raw;

    const Bytes out_raw{static_cast<std::uint64_t>(fit_out.predict(n_raw))};
    est.d_out = out_raw;
    est.instructions = est.ct_host.value() *
                       static_cast<double>(line.host_threads) * host_clock *
                       line.cost.host_ipc;
    estimates.push_back(est);

    // Propagate predicted volumes to downstream consumers.
    const auto share = line.outputs.empty()
                           ? Bytes{0}
                           : Bytes{out_raw.count() / line.outputs.size()};
    for (const auto& name : line.outputs) {
      predicted[name] = share;
      on_storage[name] = false;
    }

    if (diagnostics != nullptr) {
      diagnostics->predicted_out.push_back(out_raw);
      diagnostics->predicted_in.push_back(in_raw);
    }
  }
  return estimates;
}

}  // namespace isp::plan
