// The "optimal programmer-directed" baseline (§V).
//
// The paper's comparison point is a C programmer who exhaustively tries all
// reasonable combinations of single-entry-single-exit code regions on the
// CSD (with the CSD fully dedicated) and keeps the combination with the
// shortest measured end-to-end latency.  The oracle reproduces that: one
// functional reference run collects true per-line volumes, then every one of
// the 2^L placements is replayed timing-only and the fastest wins.
#pragma once

#include <cstdint>

#include "ir/plan.hpp"
#include "ir/program.hpp"
#include "runtime/engine.hpp"
#include "system/model.hpp"

namespace isp::plan {

struct OracleResult {
  ir::Plan best;              // carries true (measured) per-line estimates
  Seconds best_latency;       // measured end-to-end of the winner
  Seconds host_only_latency;  // the no-ISP C baseline latency
  std::uint64_t combinations_evaluated = 0;
};

struct OracleOptions {
  /// Engine options used for every evaluation (availability etc.).  The
  /// paper's programmer optimises for a fully dedicated CSD.
  runtime::EngineOptions engine;
  /// Cap on the exhaustive space (defensive; 2^L for L lines).
  std::uint32_t max_lines = 20;
};

/// True per-line estimates from one functional host-only reference run:
/// measured compute, measured volumes — what a careful programmer's profiler
/// would report.
[[nodiscard]] std::vector<ir::LineEstimate> measure_true_estimates(
    system::SystemModel& system, const ir::Program& program);

[[nodiscard]] OracleResult exhaustive_oracle(system::SystemModel& system,
                                             const ir::Program& program,
                                             OracleOptions options = {});

}  // namespace isp::plan
