// Crash-recovery validation: output digests and the crash-point sweep.
//
// The power-loss fault site (fault::Site::PowerLoss) can cut the whole
// device at any virtual-time event boundary; the device stack recovers —
// NVMe reset with abort+requeue, firmware reboot, FTL remount from the
// durable journal/checkpoint — and the engine restarts lost offloaded work.
// This subsystem is how that claim is *checked*: run an application once
// fault-free to fix its reference output, then deterministically crash it
// at every K-th event boundary, recover, and assert that
//   * the recovered run's output digest equals the fault-free digest,
//   * every FTL invariant holds on the remounted device,
//   * the recovery cost stays bounded.
// The sweep knob is the fault plan itself: rate 1 + skip_first k +
// max_faults 1 fires exactly one crash at the (k+1)-th boundary, so the
// sweep is a loop over k with no extra machinery in the engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/exec_mode.hpp"
#include "ir/plan.hpp"
#include "ir/program.hpp"
#include "runtime/engine.hpp"
#include "system/config.hpp"

namespace isp::recovery {

/// Order-stable FNV-1a digest over every line output the run produced:
/// object names and physical payloads, walked in program order.  Two runs
/// computed the same results iff their digests match.
[[nodiscard]] std::uint64_t digest_outputs(const ir::Program& program,
                                           const ir::ObjectStore& store);

/// One crash point of the sweep.
struct CrashPointOutcome {
  std::uint64_t boundary = 0;      // event boundary the crash was armed at
  bool crashed = false;            // false: the run ended before boundary
  std::uint64_t digest = 0;
  bool output_matches = false;     // digest equals the fault-free reference
  bool ftl_invariants_ok = false;  // remounted FTL passed check_invariants()
  std::uint64_t ftl_recoveries = 0;
  Seconds total;                   // end-to-end latency with the crash
  Seconds recovery_overhead;       // downtime + remount + re-staging
};

struct CrashSweepOptions {
  /// Crash at boundaries 0, stride, 2·stride, … .
  std::uint64_t stride = 1;
  /// Safety cap on sweep points (0 = run until the app ends before the
  /// armed boundary, i.e. full coverage).
  std::uint64_t max_points = 0;
  std::uint64_t fault_seed = 1;
  codegen::ExecMode mode = codegen::ExecMode::CompiledNoCopy;
  /// Worker threads for the sweep (0 = one per hardware thread).  Crash
  /// points are independent simulations, so they fan out through
  /// exec::run_batch in submission-order waves; the result is byte-identical
  /// to the serial sweep at any job count.
  unsigned jobs = 1;
  /// Base engine options; the fault plan is overwritten per point.
  runtime::EngineOptions engine;
  /// Platform every point runs on.  The crash sweep exercises whichever
  /// storage backend this selects (CsdConfig::backend), so the same sweep
  /// validates FTL journal replay and ZNS zone recovery.
  system::SystemConfig system = system::SystemConfig::paper_platform();
};

struct CrashSweepResult {
  std::string app;
  std::uint64_t reference_digest = 0;  // fault-free run
  Seconds reference_total;
  std::vector<CrashPointOutcome> points;  // only boundaries that crashed

  [[nodiscard]] bool all_outputs_match() const;
  [[nodiscard]] bool all_invariants_hold() const;
  /// Largest recovery overhead across the sweep.
  [[nodiscard]] Seconds worst_recovery() const;
};

/// Deterministically crash `program` at every stride-th event boundary and
/// recover.  Each point runs on a fresh SystemModel (fresh FTL, fresh
/// queues) so crash points are independent and reproducible.
[[nodiscard]] CrashSweepResult crash_sweep(const ir::Program& program,
                                           const ir::Plan& plan,
                                           const CrashSweepOptions& options);

}  // namespace isp::recovery
