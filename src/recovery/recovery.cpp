#include "recovery/recovery.hpp"

#include <algorithm>
#include <cstddef>

#include "common/error.hpp"
#include "system/model.hpp"

namespace isp::recovery {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t digest_outputs(const ir::Program& program,
                             const ir::ObjectStore& store) {
  std::uint64_t h = kFnvOffset;
  for (const auto& line : program.lines()) {
    for (const auto& name : line.outputs) {
      if (!store.contains(name)) continue;
      const auto& obj = store.at(name);
      fnv_mix(h, name.data(), name.size());
      const auto bytes = obj.physical.as<const std::byte>();
      fnv_mix(h, bytes.data(), bytes.size());
    }
  }
  return h;
}

bool CrashSweepResult::all_outputs_match() const {
  return std::all_of(points.begin(), points.end(),
                     [](const CrashPointOutcome& p) {
                       return !p.crashed || p.output_matches;
                     });
}

bool CrashSweepResult::all_invariants_hold() const {
  return std::all_of(points.begin(), points.end(),
                     [](const CrashPointOutcome& p) {
                       return !p.crashed || p.ftl_invariants_ok;
                     });
}

Seconds CrashSweepResult::worst_recovery() const {
  Seconds worst;
  for (const auto& p : points) worst = std::max(worst, p.recovery_overhead);
  return worst;
}

CrashSweepResult crash_sweep(const ir::Program& program, const ir::Plan& plan,
                             const CrashSweepOptions& options) {
  ISP_CHECK(options.stride >= 1, "sweep stride must be at least 1");
  CrashSweepResult result;
  result.app = program.name();

  // Reference run: same mode and engine options, no faults at all.
  {
    system::SystemModel system;
    auto store = program.make_store();
    runtime::EngineOptions opts = options.engine;
    opts.fault = fault::FaultConfig{};
    const auto report = runtime::run_program(system, program, plan,
                                             options.mode, opts, &store);
    result.reference_digest = digest_outputs(program, store);
    result.reference_total = report.total;
  }

  for (std::uint64_t k = 0;; ++k) {
    if (options.max_points > 0 && k >= options.max_points) break;

    // Exactly one crash, at the (k·stride + 1)-th PowerLoss opportunity.
    system::SystemModel system;
    auto store = program.make_store();
    runtime::EngineOptions opts = options.engine;
    opts.fault = fault::FaultConfig{};
    opts.fault.seed = options.fault_seed;
    auto& site =
        opts.fault.sites[static_cast<std::size_t>(fault::Site::PowerLoss)];
    site.rate = 1.0;
    site.skip_first = k * options.stride;
    site.max_faults = 1;

    const auto report = runtime::run_program(system, program, plan,
                                             options.mode, opts, &store);

    if (report.power_losses == 0) break;  // the run ended before the boundary

    CrashPointOutcome point;
    point.boundary = k * options.stride;
    point.crashed = true;
    point.digest = digest_outputs(program, store);
    point.output_matches = point.digest == result.reference_digest;
    point.total = report.total;
    point.recovery_overhead = report.recovery_overhead;

    auto& ftl = system.csd_device().ftl();
    point.ftl_recoveries = ftl.stats().recoveries;
    try {
      ftl.check_invariants();
      point.ftl_invariants_ok = ftl.mounted() && point.ftl_recoveries >= 1;
    } catch (const Error&) {
      point.ftl_invariants_ok = false;
    }
    result.points.push_back(point);
  }
  return result;
}

}  // namespace isp::recovery
