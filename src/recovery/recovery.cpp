#include "recovery/recovery.hpp"

#include <algorithm>
#include <cstddef>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "exec/pool.hpp"
#include "system/model.hpp"

namespace isp::recovery {

std::uint64_t digest_outputs(const ir::Program& program,
                             const ir::ObjectStore& store) {
  std::uint64_t h = kFnvOffset;
  for (const auto& line : program.lines()) {
    for (const auto& name : line.outputs) {
      if (!store.contains(name)) continue;
      const auto& obj = store.at(name);
      h = fnv1a_bytes(h, name.data(), name.size());
      const auto bytes = obj.physical.as<const std::byte>();
      h = fnv1a_bytes(h, bytes.data(), bytes.size());
    }
  }
  return h;
}

bool CrashSweepResult::all_outputs_match() const {
  return std::all_of(points.begin(), points.end(),
                     [](const CrashPointOutcome& p) {
                       return !p.crashed || p.output_matches;
                     });
}

bool CrashSweepResult::all_invariants_hold() const {
  return std::all_of(points.begin(), points.end(),
                     [](const CrashPointOutcome& p) {
                       return !p.crashed || p.ftl_invariants_ok;
                     });
}

Seconds CrashSweepResult::worst_recovery() const {
  Seconds worst;
  for (const auto& p : points) worst = std::max(worst, p.recovery_overhead);
  return worst;
}

CrashSweepResult crash_sweep(const ir::Program& program, const ir::Plan& plan,
                             const CrashSweepOptions& options) {
  ISP_CHECK(options.stride >= 1, "sweep stride must be at least 1");
  CrashSweepResult result;
  result.app = program.name();

  // Reference run: same mode and engine options, no faults at all.
  {
    system::SystemModel system(options.system);
    auto store = program.make_store();
    runtime::EngineOptions opts = options.engine;
    opts.fault = fault::FaultConfig{};
    const auto report = runtime::run_program(system, program, plan,
                                             options.mode, opts, &store);
    result.reference_digest = digest_outputs(program, store);
    result.reference_total = report.total;
  }

  // One crash point: a fresh system, exactly one crash at the
  // (k·stride + 1)-th PowerLoss opportunity.  Everything mutable lives
  // inside the call, so points can run on any thread in any order.
  const auto run_point = [&](std::uint64_t k) {
    system::SystemModel system(options.system);
    auto store = program.make_store();
    runtime::EngineOptions opts = options.engine;
    opts.fault = fault::FaultConfig{};
    opts.fault.seed = options.fault_seed;
    auto& site =
        opts.fault.sites[static_cast<std::size_t>(fault::Site::PowerLoss)];
    site.rate = 1.0;
    site.skip_first = k * options.stride;
    site.max_faults = 1;

    const auto report = runtime::run_program(system, program, plan,
                                             options.mode, opts, &store);

    CrashPointOutcome point;
    point.boundary = k * options.stride;
    // The run ended before the armed boundary: the sweep is exhausted.
    if (report.power_losses == 0) return point;

    point.crashed = true;
    point.digest = digest_outputs(program, store);
    point.output_matches = point.digest == result.reference_digest;
    point.total = report.total;
    point.recovery_overhead = report.recovery_overhead;

    auto& storage = system.csd_device().storage();
    point.ftl_recoveries = storage.counters().recoveries;
    try {
      storage.check_invariants();
      point.ftl_invariants_ok =
          storage.mounted() && point.ftl_recoveries >= 1;
    } catch (const Error&) {
      point.ftl_invariants_ok = false;
    }
    return point;
  };

  // The sweep's length is data-dependent (run until a point no longer
  // crashes), so fan out in submission-order waves: each wave's points are
  // appended in index order and the sweep stops at the first non-crashed
  // point, discarding the rest of that wave.  Points past the end are
  // wasted work, never wrong answers — each is independent — so the result
  // is byte-identical to the serial sweep at any job count, and jobs == 1
  // (wave size 1) *is* the serial sweep.
  const unsigned jobs =
      options.jobs == 0 ? exec::default_jobs() : options.jobs;
  const std::uint64_t wave =
      jobs <= 1 ? 1 : static_cast<std::uint64_t>(jobs) * 2;
  std::uint64_t k = 0;
  bool exhausted = false;
  while (!exhausted) {
    std::uint64_t count = wave;
    if (options.max_points > 0) {
      if (k >= options.max_points) break;
      count = std::min(count, options.max_points - k);
    }
    auto outcomes = exec::run_batch(
        static_cast<std::size_t>(count),
        [&](std::size_t i) { return run_point(k + i); }, jobs);
    for (auto& point : outcomes) {
      if (!point.crashed) {
        exhausted = true;
        break;
      }
      result.points.push_back(point);
    }
    k += count;
  }
  return result;
}

}  // namespace isp::recovery
