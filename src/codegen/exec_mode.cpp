#include "codegen/exec_mode.hpp"

namespace isp::codegen {

std::string_view to_string(ExecMode mode) {
  switch (mode) {
    case ExecMode::NativeC:
      return "native-c";
    case ExecMode::Interpreted:
      return "interpreted";
    case ExecMode::Compiled:
      return "compiled";
    case ExecMode::CompiledNoCopy:
      return "compiled-nocopy";
  }
  return "?";
}

double RuntimeOverheadModel::compute_multiplier(ExecMode mode) const {
  switch (mode) {
    case ExecMode::NativeC:
      return 1.0;
    case ExecMode::Interpreted:
      return interpreted_compute;
    case ExecMode::Compiled:
    case ExecMode::CompiledNoCopy:
      return compiled_compute;
  }
  return 1.0;
}

bool RuntimeOverheadModel::pays_marshalling(ExecMode mode) const {
  return mode == ExecMode::Interpreted || mode == ExecMode::Compiled;
}

Seconds RuntimeOverheadModel::dispatch_overhead(ExecMode mode) const {
  return mode == ExecMode::Interpreted ? interpreted_dispatch
                                       : Seconds::zero();
}

bool RuntimeOverheadModel::pays_compile(ExecMode mode) const {
  return mode == ExecMode::Compiled || mode == ExecMode::CompiledNoCopy;
}

}  // namespace isp::codegen
