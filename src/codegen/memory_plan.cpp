#include "codegen/memory_plan.hpp"

#include <map>
#include <optional>

#include "common/error.hpp"

namespace isp::codegen {

const ObjectPlacement* MemoryPlan::find(const std::string& name) const {
  for (const auto& o : objects) {
    if (o.object == name) return &o;
  }
  return nullptr;
}

namespace {

/// Placement of the first line consuming `name`, if any.
std::optional<ir::Placement> first_consumer(const ir::Program& program,
                                            const ir::Plan& plan,
                                            const std::string& name,
                                            std::size_t after_line) {
  for (std::size_t i = after_line; i < program.line_count(); ++i) {
    for (const auto& in : program.lines()[i].inputs) {
      if (in == name) return plan.placement[i];
    }
  }
  return std::nullopt;
}

}  // namespace

MemoryPlan plan_memory(const ir::Program& program, const ir::Plan& plan,
                       const mem::AddressSpace& address_space, ExecMode mode) {
  ISP_CHECK(plan.placement.size() == program.line_count(),
            "plan does not match program");
  MemoryPlan out;

  const auto* host_window = address_space.window(mem::MemKind::HostDram);
  const auto* device_window = address_space.window(mem::MemKind::DeviceDram);
  ISP_CHECK(host_window != nullptr && device_window != nullptr,
            "address space lacks host or device DRAM");
  mem::Allocator host_alloc(*host_window);
  mem::Allocator device_alloc(*device_window);

  // Producer placement per object (datasets have no producer: storage).
  std::map<std::string, std::optional<ir::Placement>> producer;
  for (const auto& d : program.datasets()) {
    producer[d.object.name] = std::nullopt;
  }

  const bool elide = (mode == ExecMode::CompiledNoCopy ||
                      mode == ExecMode::NativeC);

  for (std::size_t i = 0; i < program.line_count(); ++i) {
    const auto& line = program.lines()[i];
    for (const auto& name : line.outputs) {
      producer[name] = plan.placement[i];

      const auto consumer = first_consumer(program, plan, name, i + 1);
      // Near-consumer policy; an unconsumed (final) object lands at the host,
      // where the program's results must end up.
      const auto side = consumer.value_or(ir::Placement::Host);
      const auto kind = mem::place_near_consumer(side == ir::Placement::Csd);

      // Size what we can know statically: intermediates are bounded by the
      // volume of the line's stored+inter-line inputs (post-reduction sizes
      // are only known at run time; the plan reserves conservatively).
      Bytes reserve{1_MiB};
      for (const auto& in : line.inputs) {
        // Reserve in proportion to input volume if the input is a dataset.
        for (const auto& d : program.datasets()) {
          if (d.object.name == in) reserve += d.object.virtual_bytes;
        }
      }

      auto& alloc = (kind == mem::MemKind::DeviceDram) ? device_alloc
                                                       : host_alloc;
      const auto allocation = alloc.allocate(reserve);
      // DRAM exhaustion degrades to the other side rather than failing: the
      // policy is a preference, not a correctness requirement.
      ObjectPlacement placement;
      placement.object = name;
      placement.size = reserve;
      if (allocation) {
        placement.kind = kind;
        placement.address = allocation->address;
      } else {
        auto& other = (kind == mem::MemKind::DeviceDram) ? host_alloc
                                                         : device_alloc;
        const auto fallback = other.allocate(reserve);
        ISP_CHECK(fallback.has_value(), "both DRAM pools exhausted planning '"
                                            << name << "'");
        placement.kind = fallback->kind;
        placement.address = fallback->address;
      }

      // Zero-copy when producer and the consuming side share the object's
      // memory and the mode eliminates redundant memory operations.
      const bool same_side =
          (side == plan.placement[i]) ||
          (placement.kind == mem::MemKind::DeviceDram &&
           plan.placement[i] == ir::Placement::Csd) ||
          (placement.kind == mem::MemKind::HostDram &&
           plan.placement[i] == ir::Placement::Host);
      placement.zero_copy = elide && same_side;
      if (placement.zero_copy) ++out.zero_copy_objects;

      if (placement.kind == mem::MemKind::DeviceDram) {
        out.device_bytes += placement.size;
      } else {
        out.host_bytes += placement.size;
      }
      out.objects.push_back(std::move(placement));
    }
  }
  return out;
}

}  // namespace isp::codegen
