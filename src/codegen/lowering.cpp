#include "codegen/lowering.hpp"

#include "common/error.hpp"

namespace isp::codegen {

LoweredProgram lower(const ir::Program& program, const ir::Plan& plan,
                     const mem::AddressSpace& address_space, ExecMode mode,
                     const LoweringOptions& options,
                     const RuntimeOverheadModel& overhead) {
  ISP_CHECK(plan.placement.size() == program.line_count(),
            "plan does not match program");

  LoweredProgram out;
  out.mode = mode;
  out.memory = plan_memory(program, plan, address_space, mode);

  const bool marshals = overhead.pays_marshalling(mode);
  std::uint64_t csd_lines = 0;

  for (std::size_t i = 0; i < program.line_count(); ++i) {
    LoweredLine lowered;
    lowered.index = static_cast<std::uint32_t>(i);
    lowered.placement = plan.placement[i];

    if (lowered.placement == ir::Placement::Csd) {
      ++csd_lines;
      lowered.enters_csd_group =
          (i == 0 || plan.placement[i - 1] != ir::Placement::Csd);
      if (lowered.enters_csd_group) ++out.csd_group_count;
      lowered.status_updates = options.instrument_status;
    }

    // Marshalling is a property of the runtime mode: the shared mutable
    // address space of CompiledNoCopy/NativeC absorbs every boundary copy
    // (§III-C(c)); Interpreted/Compiled pay it on the line's volumes.
    lowered.marshalling = marshals;
    out.lines.push_back(lowered);
  }

  out.csd_code_image = Bytes{csd_lines * options.code_bytes_per_line.count()};
  out.compile_latency = overhead.pays_compile(mode) ? overhead.compile_latency
                                                    : Seconds::zero();
  return out;
}

}  // namespace isp::codegen
