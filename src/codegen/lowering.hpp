// Lowering: turn (program, plan, mode) into the pair of executables the
// engine runs (§III-C).
//
// Contiguous runs of CSD-placed lines become one CSD function each — the
// unit ActivePy enqueues on the call queue — because Algorithm 1 already
// priced the boundary transfers of each run.  Every CSD line is instrumented
// with the patched status-update code; host lines are not.  The generated
// CSD binary is "emitted into the target device memory location" at start of
// run, which the engine charges as a CodeImage transfer.
#pragma once

#include <cstdint>
#include <vector>

#include "codegen/exec_mode.hpp"
#include "codegen/memory_plan.hpp"
#include "ir/plan.hpp"
#include "ir/program.hpp"

namespace isp::codegen {

struct LoweredLine {
  std::uint32_t index = 0;
  ir::Placement placement = ir::Placement::Host;
  bool enters_csd_group = false;  // first line of a CSD run: call invocation
  bool status_updates = false;    // patched per-chunk progress reports
  bool marshalling = false;       // boundary copies paid under this mode
};

struct LoweredProgram {
  ExecMode mode = ExecMode::CompiledNoCopy;
  std::vector<LoweredLine> lines;
  MemoryPlan memory;
  std::uint32_t csd_group_count = 0;
  Bytes csd_code_image;      // generated device binary size
  Seconds compile_latency;   // charged once before execution
};

struct LoweringOptions {
  /// Generated machine code per CSD line (drives the code-image transfer).
  Bytes code_bytes_per_line = Bytes{32 * 1024};
  /// Instrument CSD lines with status updates (off to model a framework
  /// without feedback, e.g. the static C baseline).
  bool instrument_status = true;
};

[[nodiscard]] LoweredProgram lower(const ir::Program& program,
                                   const ir::Plan& plan,
                                   const mem::AddressSpace& address_space,
                                   ExecMode mode,
                                   const LoweringOptions& options = {},
                                   const RuntimeOverheadModel& overhead = {});

}  // namespace isp::codegen
