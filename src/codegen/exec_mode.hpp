// Language-runtime execution modes and their overhead model (§III-C(d), §V
// "ActivePy's optimizations in its language runtime").
//
// The paper quantifies three runtime configurations against the C baseline:
//   * Interpreted  — stock CPython: +41% end-to-end on average;
//   * Compiled     — Cython-generated machine code, but values still cross
//                    line/library boundaries through Python buffer objects:
//                    +20% on average;
//   * CompiledNoCopy — ActivePy's final form: Cython code plus redundant-
//                    memory-operation elimination (operands live in mutable
//                    shared memory, call-by-reference): ≈ the C baseline,
//                    leaving only ~1% compile overhead.
//   * NativeC      — the reference C implementation (no overhead at all).
//
// The overheads decompose into a compute multiplier (interpreter dispatch)
// and a per-boundary marshalling copy charged at Python-buffer bandwidth.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.hpp"

namespace isp::codegen {

enum class ExecMode : std::uint8_t {
  NativeC = 0,
  Interpreted,
  Compiled,
  CompiledNoCopy,
};

[[nodiscard]] std::string_view to_string(ExecMode mode);

struct RuntimeOverheadModel {
  /// Multiplier on every line's compute time.
  double interpreted_compute = 1.26;
  double compiled_compute = 1.01;
  /// Fixed interpreter dispatch cost per executed line.
  Seconds interpreted_dispatch = Seconds{40e-6};
  /// Bandwidth of boundary marshalling copies (PyObject buffer → C array and
  /// back); paid on a line's input+output volume in modes without the
  /// redundant-memory-operation elimination.
  BytesPerSecond marshal_bandwidth = gb_per_s(4.6);
  /// One-time Cython compilation overhead (the paper's ~1%, ≈0.1 s).
  Seconds compile_latency = Seconds{0.05};

  [[nodiscard]] double compute_multiplier(ExecMode mode) const;
  [[nodiscard]] bool pays_marshalling(ExecMode mode) const;
  [[nodiscard]] Seconds dispatch_overhead(ExecMode mode) const;
  [[nodiscard]] bool pays_compile(ExecMode mode) const;
};

}  // namespace isp::codegen
