// Memory planning: where every data object lives (§III-C(a), (c)).
//
// ActivePy adopts one shared address space and places each object near its
// consumer: an object first consumed by a CSD line is allocated in device
// DRAM (reached by the host through the BAR window), one consumed on the
// host in host DRAM.  Objects whose producer and consumer share a memory —
// and whose mode eliminates redundant memory operations — become zero-copy:
// the callee reads the caller's mutable memory directly.
//
// Storage-resident datasets are not materialised in DRAM — they stream
// through a bounded buffer pool — so only produced intermediates consume
// planned DRAM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/exec_mode.hpp"
#include "ir/plan.hpp"
#include "ir/program.hpp"
#include "mem/address_space.hpp"
#include "mem/allocator.hpp"

namespace isp::codegen {

struct ObjectPlacement {
  std::string object;
  mem::MemKind kind = mem::MemKind::HostDram;
  std::uint64_t address = 0;
  Bytes size;
  bool zero_copy = false;  // marshalling elided for this object
};

struct MemoryPlan {
  std::vector<ObjectPlacement> objects;
  Bytes host_bytes;
  Bytes device_bytes;
  std::uint32_t zero_copy_objects = 0;

  [[nodiscard]] const ObjectPlacement* find(const std::string& name) const;
};

/// Build the plan: for each object produced by a line (or loaded from
/// storage into memory), pick the region of its first consumer, allocate an
/// address, and mark zero-copy pairs under `mode`.
[[nodiscard]] MemoryPlan plan_memory(const ir::Program& program,
                                     const ir::Plan& plan,
                                     const mem::AddressSpace& address_space,
                                     ExecMode mode);

}  // namespace isp::codegen
