#include "sim/simulator.hpp"

#include <utility>

#include "common/error.hpp"

namespace isp::sim {

void Simulator::schedule(Seconds delay, Action action) {
  ISP_CHECK(delay.value() >= 0.0, "cannot schedule into the past");
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::schedule_at(SimTime at, Action action) {
  ISP_CHECK(at >= now_, "cannot schedule before now()");
  queue_.push(Entry{at, next_seq_++, std::move(action)});
}

SimTime Simulator::run() { return run_until(SimTime::infinity()); }

SimTime Simulator::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    // Copy out before pop: the action may schedule new events.
    Entry entry{queue_.top().at, queue_.top().seq, queue_.top().action};
    queue_.pop();
    now_ = entry.at;
    ++events_executed_;
    entry.action();
  }
  if (queue_.empty()) return now_;
  if (until < SimTime::infinity() && now_ < until) now_ = until;
  return now_;
}

}  // namespace isp::sim
