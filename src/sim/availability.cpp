#include "sim/availability.hpp"

#include <algorithm>
#include <utility>

#include "common/digest.hpp"
#include "common/error.hpp"

namespace isp::sim {

AvailabilitySchedule AvailabilitySchedule::constant(double fraction) {
  ISP_CHECK(fraction >= 0.0 && fraction <= 1.0,
            "availability fraction out of [0,1]: " << fraction);
  AvailabilitySchedule s;
  s.steps_ = {{SimTime::zero(), fraction}};
  return s;
}

AvailabilitySchedule AvailabilitySchedule::steps(
    std::vector<std::pair<SimTime, double>> steps) {
  ISP_CHECK(!steps.empty(), "schedule needs at least one step");
  ISP_CHECK(steps.front().first == SimTime::zero(),
            "first step must start at t=0");
  for (std::size_t i = 0; i < steps.size(); ++i) {
    ISP_CHECK(steps[i].second >= 0.0 && steps[i].second <= 1.0,
              "availability fraction out of [0,1]");
    if (i > 0) {
      ISP_CHECK(steps[i - 1].first < steps[i].first,
                "steps must be strictly increasing in time");
    }
  }
  AvailabilitySchedule s;
  s.steps_ = std::move(steps);
  return s;
}

std::size_t AvailabilitySchedule::segment_at(SimTime t) const {
  // Fast path: the cached segment or one of its two successors.  The
  // engine's queries move monotonically forward in virtual time, so almost
  // every lookup lands here.
  std::size_t c = cursor_;
  if (c >= steps_.size()) c = 0;
  if (steps_[c].first <= t) {
    if (c + 1 == steps_.size() || t < steps_[c + 1].first) {
      cursor_ = c;
      return c;
    }
    if (c + 2 >= steps_.size() || t < steps_[c + 2].first) {
      cursor_ = c + 1;
      return c + 1;
    }
  }
  // Slow path: binary search for the last step with start <= t.  The first
  // step is at t=0 and SimTime is never negative, so the bound is >= 1.
  const auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](SimTime v, const std::pair<SimTime, double>& s) {
        return v < s.first;
      });
  c = static_cast<std::size_t>(it - steps_.begin()) - 1;
  cursor_ = c;
  return c;
}

double AvailabilitySchedule::fraction_at(SimTime t) const {
  return steps_[segment_at(t)].second;
}

SimTime AvailabilitySchedule::finish_time(SimTime t0, Seconds work) const {
  ISP_CHECK(work.value() >= 0.0, "negative work");
  double remaining = work.value();
  if (remaining == 0.0) return t0;
  SimTime t = t0;
  for (std::size_t i = segment_at(t0); i < steps_.size(); ++i) {
    const double fraction = steps_[i].second;
    const SimTime seg_end =
        (i + 1 < steps_.size()) ? steps_[i + 1].first : SimTime::infinity();
    if (seg_end <= t) continue;
    const double span = (seg_end - t).value();
    if (fraction > 0.0) {
      const double doable = span * fraction;
      if (doable >= remaining) {
        return t + Seconds{remaining / fraction};
      }
      remaining -= doable;
    }
    t = seg_end;
  }
  return SimTime::infinity();
}

Seconds AvailabilitySchedule::work_done(SimTime t0, SimTime t1) const {
  if (t1 <= t0) return Seconds::zero();
  double total = 0.0;
  for (std::size_t i = segment_at(t0); i < steps_.size(); ++i) {
    const SimTime seg_start = steps_[i].first;
    if (seg_start >= t1) break;
    const SimTime seg_end =
        (i + 1 < steps_.size()) ? steps_[i + 1].first : SimTime::infinity();
    const SimTime lo = seg_start > t0 ? seg_start : t0;
    const SimTime hi = seg_end < t1 ? seg_end : t1;
    if (hi > lo) total += (hi - lo).value() * steps_[i].second;
  }
  return Seconds{total};
}

AvailabilitySchedule AvailabilitySchedule::rebased(SimTime origin) const {
  ISP_CHECK(origin.seconds() >= 0.0, "rebase origin must be non-negative");
  AvailabilitySchedule s;
  s.steps_.clear();
  s.steps_.emplace_back(SimTime::zero(), fraction_at(origin));
  for (const auto& [at, fraction] : steps_) {
    if (at <= origin) continue;
    s.steps_.emplace_back(SimTime{(at - origin).value()}, fraction);
  }
  return s;
}

AvailabilitySchedule AvailabilitySchedule::scaled(double factor) const {
  ISP_CHECK(factor >= 0.0 && factor <= 1.0,
            "scale factor out of [0,1]: " << factor);
  AvailabilitySchedule s;
  s.steps_ = steps_;
  for (auto& [at, fraction] : s.steps_) {
    (void)at;
    fraction = std::clamp(fraction * factor, 0.0, 1.0);
  }
  return s;
}

void AvailabilitySchedule::add_step(SimTime at, double fraction) {
  ISP_CHECK(fraction >= 0.0 && fraction <= 1.0,
            "availability fraction out of [0,1]");
  ISP_CHECK(steps_.empty() || steps_.back().first < at,
            "step must be later than existing steps");
  steps_.emplace_back(at, fraction);
}

std::uint64_t AvailabilitySchedule::digest(std::uint64_t h) const {
  h = fnv1a(h, static_cast<std::uint64_t>(steps_.size()));
  for (const auto& [at, fraction] : steps_) {
    h = fnv1a(h, double_bits(at.seconds()));
    h = fnv1a(h, double_bits(fraction));
  }
  return h;
}

}  // namespace isp::sim
