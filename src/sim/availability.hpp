// Time-varying resource availability.
//
// Section II-B(3) of the paper identifies three sources of system dynamics —
// other applications, storage-management workloads (GC), and input changes —
// all of which manifest as the CSE (or a bandwidth resource) having only a
// fraction of its capacity available to the ISP task.  Figures 2 and 5 sweep
// exactly this fraction.  AvailabilitySchedule is a piecewise-constant
// fraction of capacity over virtual time, with the two integrals the
// execution engine needs:
//
//   finish_time(t0, work): when does `work` seconds of full-speed service
//     complete if started at t0?  (compute stretches through throttling)
//   work_done(t0, t1): how much full-speed service fits in [t0, t1)?
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace isp::sim {

/// Piecewise-constant availability fraction over virtual time.
class AvailabilitySchedule {
 public:
  /// Fully available forever.
  AvailabilitySchedule() = default;

  /// Constant fraction forever.
  static AvailabilitySchedule constant(double fraction);

  /// Piecewise schedule from (start_time, fraction) steps. Steps must be
  /// strictly increasing in time; the first step must start at t = 0.
  static AvailabilitySchedule steps(
      std::vector<std::pair<SimTime, double>> steps);

  /// Fraction available at time t (in [0, 1]).
  [[nodiscard]] double fraction_at(SimTime t) const;

  /// Completion time of `work` seconds of full-speed service starting at t0.
  /// Returns SimTime::infinity() if the schedule starves the work forever.
  [[nodiscard]] SimTime finish_time(SimTime t0, Seconds work) const;

  /// Full-speed-equivalent service delivered over [t0, t1).
  [[nodiscard]] Seconds work_done(SimTime t0, SimTime t1) const;

  /// Append a step at `at` changing the fraction (used by contention
  /// injectors that trigger on observed progress).  `at` must be strictly
  /// later than every existing step and the fraction in [0, 1]; violations
  /// throw isp::Error (checked, not a comment — callers are not trusted).
  void add_step(SimTime at, double fraction);

  /// The schedule as seen from `origin`: a new schedule whose t=0 fraction
  /// is fraction_at(origin) and whose later steps are shifted left by
  /// `origin`.  The serving layer uses this to hand a per-device schedule to
  /// a job's engine run, whose own virtual clock starts at the dispatch
  /// instant rather than at fleet time zero.
  [[nodiscard]] AvailabilitySchedule rebased(SimTime origin) const;

  /// The schedule with every fraction multiplied by `factor` (clamped to
  /// [0, 1]).  The serving layer derates a lane's CSE schedule by its
  /// storage backend's reclaim pressure this way, so the derating enters
  /// the engine run — and the memo-cache key — through the schedule itself
  /// rather than a side channel.  `factor` must be in [0, 1].
  [[nodiscard]] AvailabilitySchedule scaled(double factor) const;

  [[nodiscard]] const std::vector<std::pair<SimTime, double>>& raw_steps()
      const {
    return steps_;
  }

  /// True when the two schedules are the same piecewise function, step for
  /// step and bit for bit.  The query cursor is a pure cache and is ignored.
  /// This is the serving memo cache's exact-key check.
  [[nodiscard]] bool operator==(const AvailabilitySchedule& other) const {
    return steps_ == other.steps_;
  }

  /// Fold the schedule's steps (count, then each start-time and fraction
  /// bit pattern) into an FNV-1a digest — the serving memo cache's bucket
  /// key.  Equal schedules digest equally; the cache still verifies the
  /// full steps on every hit.
  [[nodiscard]] std::uint64_t digest(std::uint64_t h) const;

 private:
  /// Index of the segment containing t: the last step with start <= t.
  /// O(1) via the cached cursor when queries move monotonically (the
  /// engine's case — virtual time only advances), O(log n) binary search
  /// otherwise.
  [[nodiscard]] std::size_t segment_at(SimTime t) const;

  // Invariant: non-empty, sorted by time, first at t=0, fractions in [0,1].
  std::vector<std::pair<SimTime, double>> steps_{{SimTime::zero(), 1.0}};
  // Query cursor: index of the segment the last lookup landed in.  Pure
  // cache — never affects results, only where the search starts.  Makes
  // the instance non-thread-safe for concurrent queries, which matches the
  // parallel executor's contract: schedules are per-task state (the engine
  // copies its schedules per run; see src/exec/pool.hpp).
  mutable std::size_t cursor_ = 0;
};

}  // namespace isp::sim
