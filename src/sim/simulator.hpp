// Discrete-event simulation core.
//
// The device substrates (NVMe command processing, flash channel traffic,
// firmware fetch loops) are modelled as events on a shared virtual clock.
// Determinism: ties in time are broken by insertion sequence number, so a
// given program of schedules always replays identically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace isp::sim {

/// Event-driven virtual-time simulator.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `action` to run `delay` after the current time.
  void schedule(Seconds delay, Action action);

  /// Schedule `action` at absolute time `at` (must not be in the past).
  void schedule_at(SimTime at, Action action);

  /// Run events until the queue drains. Returns the final time.
  SimTime run();

  /// Run events with time <= `until`; the clock ends at min(until, drain
  /// time of remaining events... it never advances past `until`).
  SimTime run_until(SimTime until);

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// True if no scheduled events remain.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace isp::sim
