#include "zns/zns.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace isp::zns {

const char* to_string(ZoneState state) {
  switch (state) {
    case ZoneState::Empty:
      return "empty";
    case ZoneState::ImplicitlyOpen:
      return "implicitly-open";
    case ZoneState::ExplicitlyOpen:
      return "explicitly-open";
    case ZoneState::Closed:
      return "closed";
    case ZoneState::Full:
      return "full";
    case ZoneState::Offline:
      return "offline";
  }
  ISP_CHECK(false, "unknown zone state: " << static_cast<unsigned>(state));
  return "?";
}

ZnsDevice::ZnsDevice(ZnsConfig config) : config_(config) {
  const auto& g = config_.geometry;
  ISP_CHECK(config_.zone_blocks >= 1, "zones need at least one block");
  ISP_CHECK(g.total_blocks() % config_.zone_blocks == 0,
            "zone_blocks must tile the array: " << g.total_blocks() << " % "
                                                << config_.zone_blocks);
  const std::uint64_t zone_count = g.total_blocks() / config_.zone_blocks;
  ISP_CHECK(zone_count >= config_.meta_zones + 4,
            "geometry too small for a zoned namespace");
  ISP_CHECK(config_.max_open_zones >= 2,
            "need at least two open zones (host append + reclaim copy)");
  ISP_CHECK(config_.overprovision > 0.0 && config_.overprovision < 1.0,
            "overprovision fraction must be in (0,1)");
  ISP_CHECK(config_.reclaim_low_watermark >= 1 &&
                config_.reclaim_high_watermark > config_.reclaim_low_watermark,
            "bad reclaim watermarks");
  if (config_.journal.enabled) {
    ISP_CHECK(config_.meta_zones >= 1,
              "journal mode needs a dedicated metadata zone");
    ISP_CHECK(config_.journal.entry_bytes > 0 &&
                  config_.journal.checkpoint_entry_bytes > 0,
              "journal entries need a size");
    ISP_CHECK(config_.journal.checkpoint_interval_pages >= 1,
              "checkpoint interval must be at least one journal page");
    ISP_CHECK(journal_entries_per_page() >= 1,
              "journal entry larger than a flash page");
  }

  zone_pages_ = config_.zone_blocks * g.pages_per_block;
  const std::uint64_t data_zone_count = zone_count - config_.meta_zones;
  const std::uint64_t data_pages = data_zone_count * zone_pages_;
  logical_pages_ = static_cast<std::uint64_t>(
      static_cast<double>(data_pages) * (1.0 - config_.overprovision));
  // Feasibility: fully-compacted logical data plus the two append zones plus
  // the reclaim high watermark must fit in the data zones, or steady-state
  // reclaim cannot converge and appends eventually starve.
  const auto logical_zones = (logical_pages_ + zone_pages_ - 1) / zone_pages_;
  ISP_CHECK(logical_zones + 2 + config_.reclaim_high_watermark <=
                data_zone_count,
            "overprovision too small for the reclaim watermarks: "
                << logical_zones << " logical zones + 2 append + "
                << config_.reclaim_high_watermark << " watermark > "
                << data_zone_count << " data zones");

  l2p_.assign(logical_pages_, std::nullopt);
  p2l_.assign(g.total_pages(), std::nullopt);
  zones_.assign(zone_count, Zone{});
  retired_.assign(zone_count, 0);
  free_count_ = static_cast<std::uint32_t>(data_zone_count);
  bits_resize(free_bits_, zone_count);
  bits_resize(full_bits_, zone_count);
  bits_resize(valid_bits_, g.total_pages());
  bits_resize(dirty_bits_, zone_count);
  for (std::uint64_t z = config_.meta_zones; z < zone_count; ++z) {
    bit_set(free_bits_, z);
  }
  zone_max_seq_.assign(zone_count, 0);
  zone_programmed_.assign(zone_count, 0);
  if (config_.journal.enabled) {
    media_.assign(g.total_pages(), std::nullopt);
    checkpoint_.assign(logical_pages_, std::nullopt);
    journal_buf_.reserve(journal_entries_per_page());
    journal_.reserve(static_cast<std::size_t>(journal_entries_per_page()) *
                     config_.journal.checkpoint_interval_pages);
  }

  active_zone_ = allocate_append_zone();
  reclaim_zone_ = allocate_append_zone();
}

flash::Ppn ZnsDevice::zone_first_page(std::uint64_t zone) const {
  return zone * zone_pages_;
}

std::uint64_t ZnsDevice::page_zone(flash::Ppn ppn) const {
  return ppn / zone_pages_;
}

std::uint32_t ZnsDevice::journal_entries_per_page() const {
  return static_cast<std::uint32_t>(config_.geometry.page_bytes.count() /
                                    config_.journal.entry_bytes);
}

ZoneState ZnsDevice::zone_state(std::uint64_t zone) const {
  ISP_CHECK(zone < zones_.size(), "zone out of range: " << zone);
  return zones_[zone].state;
}

std::uint32_t ZnsDevice::write_pointer(std::uint64_t zone) const {
  ISP_CHECK(zone < zones_.size(), "zone out of range: " << zone);
  return zones_[zone].write_pointer;
}

std::uint32_t ZnsDevice::live_pages(std::uint64_t zone) const {
  ISP_CHECK(zone < zones_.size(), "zone out of range: " << zone);
  return zones_[zone].live;
}

std::uint64_t ZnsDevice::write_pointer_pages() const {
  std::uint64_t total = 0;
  for (std::uint64_t z = config_.meta_zones; z < zones_.size(); ++z) {
    total += zones_[z].write_pointer;
  }
  return total;
}

void ZnsDevice::make_open(std::uint64_t zone, ZoneState state) {
  Zone& z = zones_[zone];
  if (is_open(z)) {
    // Implicit→explicit (or the reverse) keeps the resource slot.
    z.state = state;
    z.opened_at = ++open_stamp_;
    return;
  }
  ISP_CHECK(z.state == ZoneState::Empty || z.state == ZoneState::Closed,
            "zone " << zone << " not openable from state "
                    << to_string(z.state));
  if (open_count_ == config_.max_open_zones) {
    // Shed the least-recently-opened zone, like a controller reclaiming its
    // open-zone resources for the new open.
    std::uint64_t lru = zones_.size();
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::uint64_t other = config_.meta_zones; other < zones_.size();
         ++other) {
      if (other == zone || !is_open(zones_[other])) continue;
      if (zones_[other].opened_at < best) {
        best = zones_[other].opened_at;
        lru = other;
      }
    }
    ISP_CHECK(lru < zones_.size(), "open-zone limit hit with nothing to shed");
    zones_[lru].state = ZoneState::Closed;
    --open_count_;
    ++stats_.implicit_closes;
  }
  if (z.state == ZoneState::Empty) {
    ISP_DCHECK(free_count_ > 0, "free-zone count underflow");
    --free_count_;
    bit_clear(free_bits_, zone);
  }
  z.state = state;
  z.opened_at = ++open_stamp_;
  ++open_count_;
}

std::uint64_t ZnsDevice::allocate_append_zone() {
  ISP_CHECK(free_count_ > 0, "ZNS out of empty zones (reclaim starved)");
  // The free-zone bitmap holds exactly the Empty (never-retired) data zones,
  // so the lowest set bit is the zone the old linear state scan chose.
  const std::uint64_t z =
      bits_find_first(free_bits_, config_.meta_zones, zones_.size());
  if (z == zones_.size()) {
    throw Error("free_count_ positive but no empty zone found");
  }
  make_open(z, ZoneState::ImplicitlyOpen);
  return z;
}

void ZnsDevice::invalidate(flash::Lpn lpn) {
  if (const auto old = l2p_[lpn]) {
    p2l_[*old] = std::nullopt;
    bit_clear(valid_bits_, *old);
    Zone& z = zones_[page_zone(*old)];
    ISP_DCHECK(z.live > 0, "live-count underflow");
    --z.live;
  } else {
    ++mapped_count_;
  }
}

void ZnsDevice::install_mapping(flash::Lpn lpn, flash::Ppn ppn) {
  l2p_[lpn] = ppn;
  p2l_[ppn] = lpn;
  bit_set(valid_bits_, ppn);
  ++zones_[page_zone(ppn)].live;
  const std::uint64_t seq = ++seq_;
  if (config_.journal.enabled) {
    // The append order *is* the mapping: the OOB stamp alone makes this
    // update recoverable, so — unlike the FTL — no journal record is
    // written.  This is the structural metadata saving of ZNS.
    media_[ppn] = Oob{lpn, seq};
    // Appends stamp increasing sequences, so the last stamp is the zone's
    // max — the durable summary remount consults instead of scanning OOB.
    zone_max_seq_[page_zone(ppn)] = seq;
  }
  ++appends_since_fold_;
  maybe_fold();
}

flash::Ppn ZnsDevice::do_append(std::uint64_t zone, flash::Lpn lpn) {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(zone >= config_.meta_zones && zone < zones_.size(),
            "not an appendable data zone: " << zone);
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  Zone& z = zones_[zone];
  ISP_CHECK(z.state != ZoneState::Full,
            "append to full zone " << zone << " (reset it first)");
  ISP_CHECK(z.state != ZoneState::Offline, "append to offline zone " << zone);
  if (!is_open(z)) make_open(zone, ZoneState::ImplicitlyOpen);
  ISP_DCHECK(z.write_pointer < zone_pages_, "write pointer past zone cap");

  invalidate(lpn);
  const flash::Ppn ppn = zone_first_page(zone) + z.write_pointer;
  ++z.write_pointer;
  zone_programmed_[zone] = z.write_pointer;
  mark_dirty(zone);
  install_mapping(lpn, ppn);
  if (z.write_pointer == zone_pages_) {
    // The zone filled: it leaves the open-resource set on its own.
    --open_count_;
    z.state = ZoneState::Full;
    bit_set(full_bits_, zone);
  }
  return ppn;
}

flash::Ppn ZnsDevice::zone_append(std::uint64_t zone, flash::Lpn lpn) {
  const flash::Ppn ppn = do_append(zone, lpn);
  ++stats_.host_appends;
  if (free_count_ <= config_.reclaim_low_watermark) reclaim();
  return ppn;
}

flash::Ppn ZnsDevice::append_internal(flash::Lpn lpn) {
  if (zones_[reclaim_zone_].state == ZoneState::Full ||
      zones_[reclaim_zone_].state == ZoneState::Offline) {
    reclaim_zone_ = allocate_append_zone();
  }
  const flash::Ppn ppn = do_append(reclaim_zone_, lpn);
  ++stats_.reclaim_copies;
  return ppn;
}

void ZnsDevice::write(flash::Lpn lpn) {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  if (zones_[active_zone_].state == ZoneState::Full ||
      zones_[active_zone_].state == ZoneState::Offline) {
    active_zone_ = allocate_append_zone();
  }
  zone_append(active_zone_, lpn);
}

std::optional<flash::Ppn> ZnsDevice::translate(flash::Lpn lpn) const {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  return l2p_[lpn];
}

void ZnsDevice::trim(flash::Lpn lpn) {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  trim_one(lpn);
}

void ZnsDevice::trim_one(flash::Lpn lpn) {
  if (const auto old = l2p_[lpn]) {
    p2l_[*old] = std::nullopt;
    bit_clear(valid_bits_, *old);
    Zone& z = zones_[page_zone(*old)];
    ISP_DCHECK(z.live > 0, "live-count underflow");
    --z.live;
    l2p_[lpn] = std::nullopt;
    --mapped_count_;
    // A trim is the one update the OOB append order cannot reconstruct, so
    // it is the one record the ZNS journal carries.
    journal_trim(lpn, ++seq_);
  }
}

void ZnsDevice::journal_trim(flash::Lpn lpn, std::uint64_t seq) {
  if (!config_.journal.enabled) return;
  journal_buf_.push_back(JournalEntry{lpn, seq});
  if (journal_buf_.size() < journal_entries_per_page()) return;
  // The open journal page filled: program it into the metadata zone.  Its
  // records become durable and the write is charged as real meta traffic.
  journal_.insert(journal_.end(), journal_buf_.begin(), journal_buf_.end());
  journal_buf_.clear();
  ++stats_.meta_appends;
  ++journal_pages_since_fold_;
  ++meta_pages_live_;
  if (journal_pages_since_fold_ >= config_.journal.checkpoint_interval_pages) {
    fold_checkpoint();
  }
}

void ZnsDevice::maybe_fold() {
  if (!config_.journal.enabled) return;
  // Appends never touch the journal, but an unbounded un-checkpointed append
  // history would make remount scan every zone.  Fold at the same update
  // cadence as the FTL (what would have filled checkpoint_interval_pages of
  // journal) so recovery cost stays bounded and the two backends compare
  // fairly.
  const std::uint64_t interval =
      static_cast<std::uint64_t>(config_.journal.checkpoint_interval_pages) *
      journal_entries_per_page();
  if (appends_since_fold_ >= interval) fold_checkpoint();
}

void ZnsDevice::fold_checkpoint() {
  // Snapshot the whole map; the old checkpoint + journal region of the
  // metadata zone is then recycled (erased) and a fresh journal starts
  // empty.  Buffered trims are superseded by the snapshot (l2p_ already
  // reflects them), exactly like the FTL fold.
  checkpoint_ = l2p_;
  checkpoint_seq_ = seq_;
  const auto page = config_.geometry.page_bytes.count();
  checkpoint_pages_ =
      (mapped_count_ * config_.journal.checkpoint_entry_bytes + page - 1) /
      page;
  if (checkpoint_pages_ == 0) checkpoint_pages_ = 1;  // map header page
  stats_.meta_appends += checkpoint_pages_;
  ++stats_.checkpoint_folds;
  const auto ppb = config_.geometry.pages_per_block;
  stats_.erases += (meta_pages_live_ + ppb - 1) / ppb;
  meta_pages_live_ = checkpoint_pages_;
  journal_.clear();
  journal_buf_.clear();
  journal_pages_since_fold_ = 0;
  appends_since_fold_ = 0;
  // Everything up to here is durably summarised by checkpoint + journal, so
  // the incremental remount check restarts its dirty-zone scope.
  bits_clear_all(dirty_bits_);
}

void ZnsDevice::open_zone(std::uint64_t zone) {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(zone >= config_.meta_zones && zone < zones_.size(),
            "not an openable data zone: " << zone);
  const ZoneState s = zones_[zone].state;
  ISP_CHECK(s != ZoneState::Full && s != ZoneState::Offline,
            "cannot open zone " << zone << " from state " << to_string(s));
  make_open(zone, ZoneState::ExplicitlyOpen);
}

void ZnsDevice::close_zone(std::uint64_t zone) {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(zone >= config_.meta_zones && zone < zones_.size(),
            "not a data zone: " << zone);
  Zone& z = zones_[zone];
  ISP_CHECK(is_open(z),
            "close of zone " << zone << " in state " << to_string(z.state));
  z.state = ZoneState::Closed;
  --open_count_;
}

void ZnsDevice::finish_zone(std::uint64_t zone) {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(zone >= config_.meta_zones && zone < zones_.size(),
            "not a data zone: " << zone);
  Zone& z = zones_[zone];
  ISP_CHECK(z.state != ZoneState::Offline, "finish of offline zone " << zone);
  if (z.state == ZoneState::Full) return;
  if (is_open(z)) --open_count_;
  if (z.state == ZoneState::Empty) {
    ISP_DCHECK(free_count_ > 0, "free-zone count underflow");
    --free_count_;
    bit_clear(free_bits_, zone);
  }
  z.state = ZoneState::Full;
  bit_set(full_bits_, zone);
}

void ZnsDevice::reset_zone(std::uint64_t zone) {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(zone >= config_.meta_zones && zone < zones_.size(),
            "not a resettable data zone: " << zone);
  Zone& z = zones_[zone];
  ISP_CHECK(z.state != ZoneState::Offline, "reset of offline zone " << zone);
  if (z.state == ZoneState::Empty) return;  // spec: reset of Empty is a no-op
  ISP_CHECK(z.live == 0,
            "reset of zone " << zone << " would destroy " << z.live
                             << " live pages (copy them forward first)");
  reset_zone_internal(zone);
}

void ZnsDevice::reset_zone_internal(std::uint64_t zone) {
  Zone& z = zones_[zone];
  ISP_DCHECK(z.live == 0, "reset with live pages");
  if (is_open(z)) --open_count_;
  if (z.write_pointer > 0) {
    // Erase exactly the blocks the write pointer reached.
    const auto ppb = config_.geometry.pages_per_block;
    stats_.erases += (z.write_pointer + ppb - 1) / ppb;
    if (!media_.empty()) {
      const flash::Ppn first = zone_first_page(zone);
      for (std::uint32_t p = 0; p < z.write_pointer; ++p) {
        media_[first + p] = std::nullopt;
      }
    }
  }
  z = Zone{};
  bit_set(free_bits_, zone);
  bit_clear(full_bits_, zone);
  zone_max_seq_[zone] = 0;
  zone_programmed_[zone] = 0;
  mark_dirty(zone);
  ++free_count_;
  ++stats_.zone_resets;
}

void ZnsDevice::copy_forward_live(std::uint64_t zone) {
  // Walk the valid-page bitmap over the programmed prefix instead of probing
  // p2l_ page by page.  append_internal() clears the source bit (it sits
  // under the cursor) and sets the destination bit in the reclaim zone
  // (outside this range — the victim is never the reclaim target), both of
  // which bits_for_each tolerates.
  const flash::Ppn first = zone_first_page(zone);
  bits_for_each(valid_bits_, first, first + zones_[zone].write_pointer,
                [&](flash::Ppn src) { append_internal(*p2l_[src]); });
  ISP_DCHECK(zones_[zone].live == 0, "zone not fully relocated");
}

void ZnsDevice::retire_zone(std::uint64_t zone) {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(zone >= config_.meta_zones && zone < zones_.size(),
            "not a retirable data zone: " << zone);
  if (retired_[zone]) return;
  // Feasibility after losing one more zone, mirroring the constructor.
  const std::uint64_t data_zone_count = zones_.size() - config_.meta_zones;
  const auto logical_zones = (logical_pages_ + zone_pages_ - 1) / zone_pages_;
  ISP_CHECK(logical_zones + 2 + config_.reclaim_high_watermark +
                    retired_count_ + 1 <=
                data_zone_count,
            "cannot retire zone " << zone
                                  << ": too few healthy zones would remain");

  // The append points must not sit on a dying zone.
  if (zone == reclaim_zone_) reclaim_zone_ = allocate_append_zone();
  if (zone == active_zone_) active_zone_ = allocate_append_zone();
  Zone& z = zones_[zone];
  // Copy-forward whatever is still live, exactly like a reclaim victim.
  copy_forward_live(zone);
  if (is_open(z)) --open_count_;
  if (z.state == ZoneState::Empty) {
    ISP_DCHECK(free_count_ > 0, "free-zone count underflow");
    --free_count_;
    bit_clear(free_bits_, zone);
  }
  if (z.write_pointer > 0) {
    const auto ppb = config_.geometry.pages_per_block;
    stats_.erases += (z.write_pointer + ppb - 1) / ppb;  // decommission erase
    if (!media_.empty()) {
      const flash::Ppn first = zone_first_page(zone);
      for (std::uint32_t p = 0; p < z.write_pointer; ++p) {
        media_[first + p] = std::nullopt;
      }
    }
  }
  z = Zone{};
  z.state = ZoneState::Offline;
  bit_clear(full_bits_, zone);
  zone_max_seq_[zone] = 0;
  zone_programmed_[zone] = 0;
  mark_dirty(zone);
  retired_[zone] = 1;
  ++retired_count_;
  ++stats_.zones_retired;
  if (config_.journal.enabled) ++stats_.meta_appends;  // offline-table entry

  // Retirement can eat into the empty pool; restore the watermark.
  if (free_count_ <= config_.reclaim_low_watermark) reclaim();
}

void ZnsDevice::reclaim() {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ++stats_.reclaim_invocations;
  while (free_count_ < config_.reclaim_high_watermark) {
    // Host-coordinated victim policy: the Full zone with the fewest live
    // pages (Closed partials stay appendable, so only Full zones qualify —
    // the mirror of the FTL's full-block-only GC).  The full-zone bitmap
    // holds exactly the Full zones (retired zones are Offline, never Full),
    // and the ascending bit walk preserves the old scan's first-strict-min
    // tie-break.
    std::uint64_t victim = zones_.size();
    std::uint32_t best_live = std::numeric_limits<std::uint32_t>::max();
    bits_for_each(full_bits_, config_.meta_zones, zones_.size(),
                  [&](std::uint64_t z) {
                    if (z == active_zone_ || z == reclaim_zone_) return;
                    if (zones_[z].live < best_live) {
                      best_live = zones_[z].live;
                      victim = z;
                    }
                  });
    if (victim == zones_.size()) return;  // nothing reclaimable yet
    // A fully-live victim yields no space: copying it forward consumes
    // exactly what the reset frees.  Stand down until something goes stale.
    if (best_live == zone_pages_) return;

    // Copy the live extents forward, then reset.
    copy_forward_live(victim);
    reset_zone_internal(victim);
  }
}

flash::StorageCrash ZnsDevice::power_loss() {
  ISP_CHECK(config_.journal.enabled,
            "power_loss() requires journal mode (JournalConfig::enabled)");
  ISP_CHECK(mounted_, "device already crashed");
  flash::StorageCrash crash;
  crash.lost_tail_updates = journal_buf_.size();
  crash.lost_trims = journal_buf_.size();  // the ZNS journal is trims only
  // Everything volatile is gone: the map, the reverse map, every zone's
  // state/write pointer/live count, the hot-path bit indexes, and the
  // buffered journal tail.  The durable state — page OOB stamps, programmed
  // journal pages, the checkpoint, the offline-zone table, and the per-zone
  // summaries (zone_max_seq_ / zone_programmed_ / dirty_bits_) — survives.
  journal_buf_.clear();
  l2p_.assign(logical_pages_, std::nullopt);
  p2l_.assign(media_.size(), std::nullopt);
  for (auto& z : zones_) z = Zone{};
  bits_clear_all(free_bits_);
  bits_clear_all(full_bits_);
  bits_clear_all(valid_bits_);
  mapped_count_ = 0;
  free_count_ = 0;
  open_count_ = 0;
  open_stamp_ = 0;
  mounted_ = false;
  return crash;
}

flash::StorageRecovery ZnsDevice::recover() {
  ISP_CHECK(config_.journal.enabled, "recover() requires journal mode");
  ISP_CHECK(!mounted_, "recover() on a mounted ZNS device");
  flash::StorageRecovery rec;

  // 1. Candidate map from the checkpoint, each entry stamped with the fold
  //    sequence (everything in the checkpoint is at least that old).
  recover_scratch_.assign(logical_pages_, std::nullopt);
  auto& m = recover_scratch_;
  for (flash::Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (checkpoint_[lpn]) m[lpn] = {*checkpoint_[lpn], checkpoint_seq_};
  }
  rec.checkpoint_pages_read = checkpoint_pages_;

  // 2. Replay the durable journal in order (trim records only).  Each
  //    trim's sequence is kept as a tombstone: the OOB scan below must not
  //    resurrect an *older* append of the same lpn that a durable trim
  //    already superseded.
  std::vector<std::uint64_t> tombstone(logical_pages_, 0);
  for (const auto& e : journal_) {
    if (e.seq > checkpoint_seq_) {
      m[e.lpn] = std::nullopt;
      tombstone[e.lpn] = std::max(tombstone[e.lpn], e.seq);
    }
  }
  rec.journal_entries_replayed = journal_.size();
  rec.journal_pages_read = (journal_.size() + journal_entries_per_page() - 1) /
                           journal_entries_per_page();

  // 3. OOB scan: appends never hit the journal (only trims do), so the
  //    checkpoint is the only durable record that covers them — every zone
  //    written after the last checkpoint fold must be read back, even when
  //    later trim pages pushed the journal's durability horizon further.
  //    Appends land at a zone's write pointer, so its programmed pages are
  //    a sequence-ordered prefix and the newest mapping for an lpn is the
  //    highest-seq stamp.
  for (std::uint64_t z = config_.meta_zones; z < zones_.size(); ++z) {
    // The durable per-zone summary answers "any stamp newer than the
    // checkpoint?" in O(1): zone_max_seq_ is the max OOB sequence in the
    // zone (stamps only grow; reset/retire clear it with the media), so
    // max > horizon iff any page is newer.  Only zones that pass are read.
    if (zone_max_seq_[z] <= checkpoint_seq_) continue;
    const flash::Ppn first = zone_first_page(z);
    ++rec.blocks_scanned;  // zones, for this backend
    rec.pages_scanned += zone_pages_;
    for (std::uint32_t p = 0; p < zone_pages_; ++p) {
      const flash::Ppn ppn = first + p;
      const auto& oob = media_[ppn];
      if (!oob || oob->seq <= checkpoint_seq_) continue;
      if (oob->seq <= tombstone[oob->lpn]) continue;  // durably trimmed
      if (!m[oob->lpn] || oob->seq > m[oob->lpn]->second) {
        m[oob->lpn] = {ppn, oob->seq};
        ++rec.tail_updates_rescued;
      }
    }
  }

  // 4. Confirm every candidate against the media: a mapping whose physical
  //    page was reset away is stale — the OOB scan already supplied the
  //    newer location if one exists.
  for (flash::Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (!m[lpn]) continue;
    const flash::Ppn ppn = m[lpn]->first;
    if (!media_[ppn] || media_[ppn]->lpn != lpn) {
      m[lpn] = std::nullopt;
      ++rec.stale_mappings_dropped;
    }
  }

  // 5. Rebuild the volatile state.  Write pointers rebuild from the
  //    programmed prefix of each zone; zone states derive from them (open
  //    state is volatile, so survivors come back Empty, Closed or Full).
  for (std::uint64_t z = config_.meta_zones; z < zones_.size(); ++z) {
    Zone nz;
    if (retired_[z]) {
      nz.state = ZoneState::Offline;
      zones_[z] = nz;
      continue;
    }
    // Programs advance the write pointer in order, so the programmed pages
    // are a prefix and the durable summary zone_programmed_ is its length —
    // no media scan needed to rebuild the pointer.
    const std::uint32_t programmed = zone_programmed_[z];
    nz.write_pointer = programmed;
    if (programmed == 0) {
      nz.state = ZoneState::Empty;
    } else if (programmed == zone_pages_) {
      nz.state = ZoneState::Full;
    } else {
      nz.state = ZoneState::Closed;
    }
    zones_[z] = nz;
  }
  mapped_count_ = 0;
  for (flash::Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (!m[lpn]) continue;
    const flash::Ppn ppn = m[lpn]->first;
    l2p_[lpn] = ppn;
    p2l_[ppn] = lpn;
    bit_set(valid_bits_, ppn);
    ++zones_[page_zone(ppn)].live;
    ++mapped_count_;
  }
  rec.mappings_recovered = mapped_count_;
  free_count_ = 0;
  for (std::uint64_t z = config_.meta_zones; z < zones_.size(); ++z) {
    if (zones_[z].state == ZoneState::Empty) {
      ++free_count_;
      bit_set(free_bits_, z);
    }
    if (zones_[z].state == ZoneState::Full) bit_set(full_bits_, z);
  }
  open_count_ = 0;
  open_stamp_ = 0;

  // 6. Re-open append points.  The first two partially written zones become
  //    the host and reclaim targets; any further partials are finished so
  //    reclaim can take them once their data goes stale (no copy needed —
  //    unlike FTL blocks, a finished zone is a first-class reclaim victim).
  mounted_ = true;
  std::vector<std::uint64_t> partial;
  for (std::uint64_t z = config_.meta_zones; z < zones_.size(); ++z) {
    if (zones_[z].state == ZoneState::Closed) partial.push_back(z);
  }
  if (!partial.empty()) {
    active_zone_ = partial[0];
    make_open(active_zone_, ZoneState::ImplicitlyOpen);
  } else {
    active_zone_ = allocate_append_zone();
  }
  if (partial.size() >= 2) {
    reclaim_zone_ = partial[1];
    make_open(reclaim_zone_, ZoneState::ImplicitlyOpen);
  } else {
    reclaim_zone_ = allocate_append_zone();
  }
  for (std::size_t i = 2; i < partial.size(); ++i) finish_zone(partial[i]);

  ++stats_.recoveries;
  // The remount contract: every invariant holds before the first IO.  The
  // default check is incremental (summaries for all zones, deep page checks
  // only where the device wrote since the last fold); the exhaustive sweep
  // stays available as a debug mode.
  if (config_.exhaustive_remount_verify) {
    check_invariants();
  } else {
    check_invariants_incremental();
  }
  return rec;
}

double ZnsDevice::gc_pressure() const {
  const double host = static_cast<double>(stats_.host_appends);
  const double internal =
      static_cast<double>(stats_.reclaim_copies + stats_.meta_appends);
  if (host + internal == 0.0) return 0.0;
  return internal / (host + internal);
}

flash::StorageCounters ZnsDevice::counters() const {
  return flash::StorageCounters{.host_pages = stats_.host_appends,
                                .reclaim_pages = stats_.reclaim_copies,
                                .meta_pages = stats_.meta_appends,
                                .resets = stats_.erases,
                                .reclaim_events = stats_.reclaim_invocations,
                                .recoveries = stats_.recoveries};
}

void ZnsDevice::record_metrics(obs::MetricsRegistry& registry) const {
  registry.counter("zns.host_appends").add(stats_.host_appends);
  registry.counter("zns.reclaim_copies").add(stats_.reclaim_copies);
  registry.counter("zns.meta_appends").add(stats_.meta_appends);
  registry.counter("zns.zone_resets").add(stats_.zone_resets);
  registry.counter("zns.erases").add(stats_.erases);
  registry.counter("zns.reclaim_invocations").add(stats_.reclaim_invocations);
  registry.counter("zns.checkpoint_folds").add(stats_.checkpoint_folds);
  registry.counter("zns.implicit_closes").add(stats_.implicit_closes);
  registry.counter("zns.zones_retired").add(stats_.zones_retired);
  registry.counter("zns.recoveries").add(stats_.recoveries);
  registry.gauge("zns.open_zones").set(static_cast<double>(open_count_));
  registry.gauge("zns.free_zones").set(static_cast<double>(free_count_));
  registry.gauge("zns.write_pointer_pages")
      .set(static_cast<double>(write_pointer_pages()));
  registry.gauge("zns.wa").set(stats_.write_amplification());
  if (stats_.host_appends > 0) {
    registry
        .histogram("zns.write_amplification",
                   obs::HistogramOptions{.min_value = 1.0,
                                         .growth = 1.05,
                                         .buckets = 96})
        .record(stats_.write_amplification());
  }
}

void ZnsDevice::check_invariants() const {
  ISP_CHECK(mounted_, "invariants undefined on an unmounted ZNS device");

  // l2p / p2l are mutually consistent bijections on their valid domain, and
  // every mapped physical page lives inside a data zone's programmed prefix.
  std::uint64_t mapped = 0;
  for (flash::Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (const auto ppn = l2p_[lpn]) {
      ISP_CHECK(*ppn < p2l_.size(), "ppn out of range");
      ISP_CHECK(p2l_[*ppn].has_value() && *p2l_[*ppn] == lpn,
                "reverse map disagrees for lpn " << lpn);
      const std::uint64_t z = page_zone(*ppn);
      ISP_CHECK(z >= config_.meta_zones,
                "data mapping points into the metadata zone");
      ISP_CHECK(*ppn - zone_first_page(z) < zones_[z].write_pointer,
                "mapping past zone " << z << "'s write pointer");
      ++mapped;
    }
  }
  std::uint64_t reverse_mapped = 0;
  for (flash::Ppn ppn = 0; ppn < p2l_.size(); ++ppn) {
    ISP_CHECK(bit_test(valid_bits_, ppn) == p2l_[ppn].has_value(),
              "valid-page bitmap drift at ppn " << ppn);
    if (p2l_[ppn].has_value()) ++reverse_mapped;
  }
  ISP_CHECK(mapped == reverse_mapped, "map cardinality mismatch");
  ISP_CHECK(mapped == mapped_count_, "mapped-count bookkeeping mismatch");

  // Per-zone state machine consistency.
  std::uint32_t free_seen = 0;
  std::uint32_t open_seen = 0;
  std::uint32_t retired_seen = 0;
  for (std::uint64_t z = config_.meta_zones; z < zones_.size(); ++z) {
    const Zone& zn = zones_[z];
    const flash::Ppn first = zone_first_page(z);
    std::uint32_t live = 0;
    for (std::uint32_t p = 0; p < zone_pages_; ++p) {
      if (p2l_[first + p].has_value()) {
        ISP_CHECK(p < zn.write_pointer, "live page past the write pointer");
        ++live;
      }
    }
    ISP_CHECK(live == zn.live, "zone " << z << " live-count mismatch");
    ISP_CHECK(zn.write_pointer <= zone_pages_, "write pointer past zone cap");
    ISP_CHECK(zone_programmed_[z] == zn.write_pointer,
              "zone " << z << " durable programmed-count drift");
    ISP_CHECK(bit_test(free_bits_, z) == (zn.state == ZoneState::Empty),
              "free-zone bitmap drift at zone " << z);
    ISP_CHECK(bit_test(full_bits_, z) == (zn.state == ZoneState::Full),
              "full-zone bitmap drift at zone " << z);
    if (!media_.empty() && !retired_[z]) {
      // Programmed pages are exactly the prefix [0, write_pointer), and the
      // durable summary holds the newest stamp among them.
      std::uint64_t max_seq = 0;
      for (std::uint32_t p = 0; p < zone_pages_; ++p) {
        const auto& oob = media_[first + p];
        ISP_CHECK(oob.has_value() == (p < zn.write_pointer),
                  "zone " << z << " programmed pages are not a prefix");
        if (oob) max_seq = std::max(max_seq, oob->seq);
      }
      ISP_CHECK(zone_max_seq_[z] == max_seq,
                "zone " << z << " durable max-seq drift");
    }
    if (retired_[z]) {
      ISP_CHECK(zone_max_seq_[z] == 0 && zone_programmed_[z] == 0,
                "retired zone " << z << " kept durable summaries");
    }
    switch (zn.state) {
      case ZoneState::Empty:
        ISP_CHECK(zn.write_pointer == 0 && zn.live == 0,
                  "empty zone " << z << " holds data");
        ++free_seen;
        break;
      case ZoneState::ImplicitlyOpen:
      case ZoneState::ExplicitlyOpen:
        ISP_CHECK(zn.write_pointer < zone_pages_,
                  "open zone " << z << " is at capacity");
        ++open_seen;
        break;
      case ZoneState::Closed:
        ISP_CHECK(zn.write_pointer < zone_pages_,
                  "closed zone " << z << " is at capacity");
        break;
      case ZoneState::Full:
        break;  // finish_zone allows write_pointer < zone_pages_
      case ZoneState::Offline:
        ISP_CHECK(retired_[z], "offline zone " << z << " not in the table");
        ISP_CHECK(zn.live == 0 && zn.write_pointer == 0,
                  "offline zone " << z << " holds data");
        break;
    }
    if (retired_[z]) {
      ISP_CHECK(zn.state == ZoneState::Offline,
                "retired zone " << z << " not offline");
      ++retired_seen;
    }
  }
  ISP_CHECK(free_seen == free_count_, "free-zone bookkeeping mismatch");
  ISP_CHECK(open_seen == open_count_, "open-zone bookkeeping mismatch");
  ISP_CHECK(open_count_ <= config_.max_open_zones,
            "open-zone limit exceeded: " << open_count_);
  ISP_CHECK(retired_seen == retired_count_,
            "retired-count bookkeeping mismatch");
  // Empty + in-use + offline partition the data zones.
  ISP_CHECK(free_seen + retired_seen <= data_zones(),
            "zone partition overflow");

  // The metadata zones never hold data mappings.
  for (flash::Ppn ppn = 0; ppn < zone_first_page(config_.meta_zones); ++ppn) {
    ISP_CHECK(!p2l_[ppn].has_value(), "data mapping in the metadata zone");
  }
}

void ZnsDevice::check_invariants_incremental() const {
  ISP_CHECK(mounted_, "invariants undefined on an unmounted ZNS device");

  // Summary pass, O(zones): per-zone counters against the valid-page bitmap
  // (popcount, no page loop), state machine, bit indexes and durable
  // summaries against the volatile bookkeeping.
  std::uint64_t live_total = 0;
  std::uint32_t free_seen = 0;
  std::uint32_t open_seen = 0;
  std::uint32_t retired_seen = 0;
  for (std::uint64_t z = config_.meta_zones; z < zones_.size(); ++z) {
    const Zone& zn = zones_[z];
    const flash::Ppn first = zone_first_page(z);
    const std::uint64_t live =
        bits_count(valid_bits_, first, first + zone_pages_);
    ISP_CHECK(live == zn.live, "zone " << z << " live-count mismatch");
    live_total += live;
    ISP_CHECK(zn.write_pointer <= zone_pages_, "write pointer past zone cap");
    ISP_CHECK(zone_programmed_[z] == zn.write_pointer,
              "zone " << z << " durable programmed-count drift");
    ISP_CHECK(bit_test(free_bits_, z) == (zn.state == ZoneState::Empty),
              "free-zone bitmap drift at zone " << z);
    ISP_CHECK(bit_test(full_bits_, z) == (zn.state == ZoneState::Full),
              "full-zone bitmap drift at zone " << z);
    switch (zn.state) {
      case ZoneState::Empty:
        ISP_CHECK(zn.write_pointer == 0 && zn.live == 0,
                  "empty zone " << z << " holds data");
        ++free_seen;
        break;
      case ZoneState::ImplicitlyOpen:
      case ZoneState::ExplicitlyOpen:
        ISP_CHECK(zn.write_pointer < zone_pages_,
                  "open zone " << z << " is at capacity");
        ++open_seen;
        break;
      case ZoneState::Closed:
        ISP_CHECK(zn.write_pointer < zone_pages_,
                  "closed zone " << z << " is at capacity");
        break;
      case ZoneState::Full:
        break;
      case ZoneState::Offline:
        ISP_CHECK(retired_[z], "offline zone " << z << " not in the table");
        ISP_CHECK(zn.live == 0 && zn.write_pointer == 0,
                  "offline zone " << z << " holds data");
        break;
    }
    if (retired_[z]) {
      ISP_CHECK(zn.state == ZoneState::Offline,
                "retired zone " << z << " not offline");
      ++retired_seen;
    }
  }
  ISP_CHECK(live_total == mapped_count_, "mapped-count bookkeeping mismatch");
  ISP_CHECK(free_seen == free_count_, "free-zone bookkeeping mismatch");
  ISP_CHECK(open_seen == open_count_, "open-zone bookkeeping mismatch");
  ISP_CHECK(open_count_ <= config_.max_open_zones,
            "open-zone limit exceeded: " << open_count_);
  ISP_CHECK(retired_seen == retired_count_,
            "retired-count bookkeeping mismatch");
  ISP_CHECK(free_seen + retired_seen <= data_zones(),
            "zone partition overflow");
  // The metadata zones never hold valid data pages.
  ISP_CHECK(bits_count(valid_bits_, 0, zone_first_page(config_.meta_zones)) ==
                0,
            "data mapping in the metadata zone");

  // Deep pass, only over zones the device touched since the last checkpoint
  // fold: per-page bitmap/map round trips and the programmed-prefix + OOB
  // summary properties.
  bits_for_each(
      dirty_bits_, config_.meta_zones, zones_.size(), [&](std::uint64_t z) {
        const Zone& zn = zones_[z];
        const flash::Ppn first = zone_first_page(z);
        std::uint64_t max_seq = 0;
        for (std::uint32_t p = 0; p < zone_pages_; ++p) {
          const flash::Ppn ppn = first + p;
          ISP_CHECK(bit_test(valid_bits_, ppn) == p2l_[ppn].has_value(),
                    "valid-page bitmap drift at ppn " << ppn);
          if (const auto lpn = p2l_[ppn]) {
            ISP_CHECK(p < zn.write_pointer, "live page past the write pointer");
            ISP_CHECK(l2p_[*lpn].has_value() && *l2p_[*lpn] == ppn,
                      "map round trip broken at ppn " << ppn);
          }
          if (!media_.empty() && !retired_[z]) {
            const auto& oob = media_[ppn];
            ISP_CHECK(oob.has_value() == (p < zn.write_pointer),
                      "zone " << z << " programmed pages are not a prefix");
            if (oob) max_seq = std::max(max_seq, oob->seq);
          }
        }
        if (!media_.empty() && !retired_[z]) {
          ISP_CHECK(zone_max_seq_[z] == max_seq,
                    "zone " << z << " durable max-seq drift");
        }
      });
}

void ZnsDevice::write_span(flash::Lpn first, std::uint64_t count) {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(first <= logical_pages_ && count <= logical_pages_ - first,
            "write_span out of range: [" << first << ", +" << count << ")");
  const std::uint64_t fold_interval =
      config_.journal.enabled
          ? static_cast<std::uint64_t>(
                config_.journal.checkpoint_interval_pages) *
                journal_entries_per_page()
          : 0;
  flash::Lpn lpn = first;
  std::uint64_t left = count;
  while (left > 0) {
    Zone& az = zones_[active_zone_];
    // Fall back to the scalar path whenever a single append could do more
    // than advance the write pointer: the active zone needs replacing or
    // (re)opening, or the device sits at the reclaim watermark — write()
    // invokes reclaim() after every append there, and the invocation count
    // is observable in the stats even when reclaim stands down.
    if (free_count_ <= config_.reclaim_low_watermark ||
        az.state == ZoneState::Full || az.state == ZoneState::Offline ||
        !is_open(az)) {
      write(lpn);
      ++lpn;
      --left;
      continue;
    }
    // Bulk run: the active zone is open with room and no append in the run
    // opens a zone or triggers reclaim, so the per-page checks hoist out
    // and the zone/journal bookkeeping lands once for the whole run.
    std::uint64_t run =
        std::min<std::uint64_t>(left, zone_pages_ - az.write_pointer);
    if (config_.journal.enabled) {
      // maybe_fold() keeps appends_since_fold_ below the interval between
      // appends; capping the run makes the fold land exactly where the
      // scalar loop folds.
      ISP_DCHECK(appends_since_fold_ < fold_interval, "missed a fold");
      run = std::min<std::uint64_t>(run, fold_interval - appends_since_fold_);
    }
    const flash::Ppn base = zone_first_page(active_zone_);
    for (std::uint64_t i = 0; i < run; ++i, ++lpn) {
      if (const auto old = l2p_[lpn]) {
        p2l_[*old] = std::nullopt;
        bit_clear(valid_bits_, *old);
        Zone& oz = zones_[page_zone(*old)];
        ISP_DCHECK(oz.live > 0, "live-count underflow");
        --oz.live;
      } else {
        ++mapped_count_;
      }
      const flash::Ppn ppn = base + az.write_pointer;
      ++az.write_pointer;
      l2p_[lpn] = ppn;
      p2l_[ppn] = lpn;
      bit_set(valid_bits_, ppn);
      ++az.live;
      const std::uint64_t seq = ++seq_;
      if (config_.journal.enabled) media_[ppn] = Oob{lpn, seq};
    }
    left -= run;
    stats_.host_appends += run;
    zone_programmed_[active_zone_] = az.write_pointer;
    if (config_.journal.enabled) zone_max_seq_[active_zone_] = seq_;
    mark_dirty(active_zone_);
    appends_since_fold_ += run;
    if (az.write_pointer == zone_pages_) {
      // The zone filled: it leaves the open-resource set on its own.
      --open_count_;
      az.state = ZoneState::Full;
      bit_set(full_bits_, active_zone_);
    }
    maybe_fold();
  }
}

void ZnsDevice::trim_span(flash::Lpn first, std::uint64_t count) {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(first <= logical_pages_ && count <= logical_pages_ - first,
            "trim_span out of range: [" << first << ", +" << count << ")");
  for (std::uint64_t i = 0; i < count; ++i) trim_one(first + i);
}

std::uint64_t ZnsDevice::read_span(flash::Lpn first, std::uint64_t count,
                                   std::vector<flash::Ppn>* out) const {
  ISP_CHECK(mounted_, "ZNS not mounted (crashed; call recover() first)");
  ISP_CHECK(first <= logical_pages_ && count <= logical_pages_ - first,
            "read_span out of range: [" << first << ", +" << count << ")");
  std::uint64_t mapped = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (const auto ppn = l2p_[first + i]) {
      ++mapped;
      if (out != nullptr) out->push_back(*ppn);
    }
  }
  return mapped;
}

}  // namespace isp::zns
