// Zoned-namespace flash backend: append-only zones, host-coordinated
// reclaim, no device-side GC.
//
// ZCSD (Lukken et al.) argues that computational storage over Zoned
// Namespaces removes exactly the contention term the paper's Equation 1
// prices for conventional SSDs: with append-only writes the device keeps no
// page-level mapping of its own, runs no background garbage collection, and
// space reclamation becomes an explicit host-coordinated operation
// (copy-forward the live extents of a victim zone, then zone_reset).  This
// file is that model, implemented against the flash::StorageBackend seam so
// a CsdDevice can run either backend (`CsdConfig::backend`).
//
// Zone state machine (NVMe ZNS §2.3, modelled states):
//
//     Empty ──append──▶ ImplicitlyOpen ──close──▶ Closed
//       │                    │                      │
//       │ open_zone          │ WP hits cap          │ append (reopen)
//       ▼                    ▼                      ▼
//     ExplicitlyOpen ──▶   Full ◀──finish_zone── (any open/closed)
//                            │
//                            │ reset_zone (live extents must be gone)
//                            ▼
//                          Empty          retire_zone ──▶ Offline (forever)
//
// At most `max_open_zones` zones are open (implicitly + explicitly) at once;
// opening one more implicitly closes the least-recently-opened zone, exactly
// like a ZNS controller shedding its open-zone resources.  Every zone
// carries a write pointer: appends land at the pointer and advance it
// monotonically until the zone fills (zone_append returns the assigned
// physical page, the ZNS "LBA assigned by the device").
//
// Durability (docs/fault-model.md "ZNS power loss"): the mapping *is* the
// append order, so — unlike the FTL — no per-write journal record exists.
// Data-page programs stamp (lpn, seq) into the page OOB area; a dedicated
// metadata zone holds an append-only journal of the only updates the OOB
// cannot reconstruct (trims) plus periodic checkpoints of the host-side
// map.  Remount after power_loss() replays checkpoint + journal (trim
// records carry tombstone sequences, so a durable trim can never be undone
// by an older append the OOB scan rediscovers), then OOB-scans only the
// zones written after the last checkpoint fold.  Write
// pointers rebuild from the programmed prefix of each zone; open zones come
// back Closed (open state is volatile, as in the spec).
//
// Invariants (enforced and property-tested):
//   * a logical page maps to at most one valid physical page, and vice versa;
//   * per-zone live counts equal the number of valid pages in the zone;
//   * programmed pages are exactly the prefix [0, write_pointer) of a zone;
//   * Empty zones have write_pointer 0 and no live pages;
//   * open zones (implicit + explicit) never exceed max_open_zones;
//   * Empty + in-use + offline zone counts always sum to the zone total.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitset.hpp"
#include "common/units.hpp"
#include "flash/backend.hpp"
#include "flash/nand.hpp"

namespace isp::obs {
class MetricsRegistry;
}

namespace isp::zns {

enum class ZoneState : std::uint8_t {
  Empty = 0,
  ImplicitlyOpen = 1,
  ExplicitlyOpen = 2,
  Closed = 3,
  Full = 4,
  Offline = 5,  // retired; never appendable again
};

[[nodiscard]] const char* to_string(ZoneState state);

struct ZnsConfig {
  flash::NandGeometry geometry;
  /// Consecutive physical blocks striped into one zone.
  std::uint32_t zone_blocks = 8;
  /// Open-zone resource limit (implicitly + explicitly open).
  std::uint32_t max_open_zones = 6;
  /// Zones reserved for the durable metadata journal/checkpoint region.
  std::uint32_t meta_zones = 1;
  /// Fraction of data-zone capacity hidden from the logical space (spare
  /// zones for reclaim to copy into).
  double overprovision = 0.125;
  /// Run host-coordinated reclaim when Empty data zones drop to this many.
  std::uint32_t reclaim_low_watermark = 2;
  /// Stop reclaiming when Empty data zones recover to this many.
  std::uint32_t reclaim_high_watermark = 4;
  flash::JournalConfig journal;
  /// Remount verification mode, mirroring FtlConfig: false (default) runs
  /// the incremental check (O(zones) summaries + deep checks on the zones
  /// dirtied since the last fold); true runs the exhaustive
  /// check_invariants() sweep on every remount.
  bool exhaustive_remount_verify = false;
};

struct ZnsStats {
  std::uint64_t host_appends = 0;    // data pages appended for the host
  std::uint64_t reclaim_copies = 0;  // live pages copied forward by reclaim
  std::uint64_t meta_appends = 0;    // journal + checkpoint pages programmed
  std::uint64_t zone_resets = 0;     // zones reset (reclaim + explicit)
  std::uint64_t erases = 0;          // block-granular erases behind resets
  std::uint64_t reclaim_invocations = 0;
  std::uint64_t checkpoint_folds = 0;
  std::uint64_t implicit_closes = 0;  // opens shed to respect the limit
  std::uint64_t zones_retired = 0;
  std::uint64_t recoveries = 0;  // successful remounts after power loss

  [[nodiscard]] double write_amplification() const {
    if (host_appends == 0) return 1.0;
    return static_cast<double>(host_appends + reclaim_copies + meta_appends) /
           static_cast<double>(host_appends);
  }
};

/// The zoned-namespace backend.  Untimed and deterministic, like the Ftl:
/// callers charge NandTiming for the traffic the stats report.
class ZnsDevice final : public flash::StorageBackend {
 public:
  explicit ZnsDevice(ZnsConfig config);

  // ---- StorageBackend seam ---------------------------------------------
  [[nodiscard]] flash::BackendKind kind() const override {
    return flash::BackendKind::Zns;
  }
  [[nodiscard]] std::uint64_t logical_pages() const override {
    return logical_pages_;
  }
  /// Host write of one logical page: an append to the device-chosen active
  /// zone (implicitly opening it as needed).  May trigger watermark reclaim.
  void write(flash::Lpn lpn) override;
  [[nodiscard]] std::optional<flash::Ppn> translate(
      flash::Lpn lpn) const override;
  void trim(flash::Lpn lpn) override;
  /// Batched extent ops (flash/backend.hpp contract: bit-for-bit the scalar
  /// loop's state, stats and journal, with the per-page open/watermark/fold
  /// checks hoisted out of the bulk runs).
  void write_span(flash::Lpn first, std::uint64_t count) override;
  void trim_span(flash::Lpn first, std::uint64_t count) override;
  std::uint64_t read_span(flash::Lpn first, std::uint64_t count,
                          std::vector<flash::Ppn>* out) const override;
  [[nodiscard]] bool journaling() const override {
    return config_.journal.enabled;
  }
  [[nodiscard]] bool mounted() const override { return mounted_; }
  flash::StorageCrash power_loss() override;
  flash::StorageRecovery recover() override;
  [[nodiscard]] double gc_pressure() const override;
  [[nodiscard]] double write_amplification() const override {
    return stats_.write_amplification();
  }
  [[nodiscard]] flash::StorageCounters counters() const override;
  void record_metrics(obs::MetricsRegistry& registry) const override;
  void check_invariants() const override;
  /// The remount-time subset of check_invariants(): O(zones) summary
  /// cross-checks, deep per-page checks only on zones dirtied since the
  /// last checkpoint fold.  recover() runs this by default
  /// (ZnsConfig::exhaustive_remount_verify switches to the full sweep);
  /// public so tests can prove the two modes agree.
  void check_invariants_incremental() const;

  // ---- Zone management (the ZNS command set) ---------------------------
  [[nodiscard]] std::uint64_t zone_count() const { return zones_.size(); }
  [[nodiscard]] std::uint64_t data_zones() const {
    return zones_.size() - config_.meta_zones;
  }
  [[nodiscard]] std::uint32_t zone_pages() const { return zone_pages_; }
  [[nodiscard]] ZoneState zone_state(std::uint64_t zone) const;
  /// Pages programmed in the zone so far (monotone between resets).
  [[nodiscard]] std::uint32_t write_pointer(std::uint64_t zone) const;
  [[nodiscard]] std::uint32_t live_pages(std::uint64_t zone) const;
  /// Zones currently open (implicitly + explicitly).
  [[nodiscard]] std::uint32_t open_zones() const { return open_count_; }
  /// Empty data zones (the reclaim watermark currency).
  [[nodiscard]] std::uint32_t free_zones() const { return free_count_; }
  /// Sum of every data zone's write pointer (gauge: total WP advance).
  [[nodiscard]] std::uint64_t write_pointer_pages() const;

  /// Append one logical page to `zone`; returns the physical page the
  /// device assigned (the write pointer's slot).  Empty and Closed zones
  /// open implicitly; Full and Offline zones reject.
  flash::Ppn zone_append(std::uint64_t zone, flash::Lpn lpn);

  /// Explicitly open an Empty or Closed zone.  Sheds the least-recently
  /// opened zone when the open-zone limit is hit.
  void open_zone(std::uint64_t zone);
  /// Close an open zone (keeps its write pointer; reopenable by append).
  void close_zone(std::uint64_t zone);
  /// Finish a zone: no further appends regardless of its write pointer.
  void finish_zone(std::uint64_t zone);
  /// Reset a zone to Empty.  Every page must be stale (trimmed or
  /// overwritten) — resetting live data would lose it silently, so the
  /// model rejects it loudly; reclaim() copies live pages out first.
  void reset_zone(std::uint64_t zone);
  /// Decommission a zone (grown-bad media): copy its live pages forward,
  /// then take it Offline forever.
  void retire_zone(std::uint64_t zone);

  /// One host-coordinated reclaim pass: pick Full victims with the fewest
  /// live pages, copy the live extents forward, reset the victims, until
  /// the Empty-zone pool recovers to the high watermark (or no victim
  /// yields space).  write() invokes this at the low watermark; hosts may
  /// also call it explicitly at idle.
  void reclaim();

  [[nodiscard]] const ZnsStats& stats() const { return stats_; }
  [[nodiscard]] const ZnsConfig& config() const { return config_; }

 private:
  struct Zone {
    ZoneState state = ZoneState::Empty;
    std::uint32_t write_pointer = 0;  // programmed-page prefix length
    std::uint32_t live = 0;           // valid (mapped) pages in the zone
    std::uint64_t opened_at = 0;      // open-order stamp, for LRU shedding
  };

  /// OOB metadata stamped on every programmed data page (durable until the
  /// zone is reset): which logical page it holds and when it was written.
  struct Oob {
    flash::Lpn lpn = 0;
    std::uint64_t seq = 0;
  };

  /// One durable journal record.  ZNS journals only what the OOB cannot
  /// reconstruct: trims.  kTrimMark-tagged entries mirror the FTL's wire
  /// format so the two backends share journal sizing.
  struct JournalEntry {
    flash::Lpn lpn = 0;
    std::uint64_t seq = 0;
  };

  [[nodiscard]] flash::Ppn zone_first_page(std::uint64_t zone) const;
  [[nodiscard]] std::uint64_t page_zone(flash::Ppn ppn) const;
  [[nodiscard]] std::uint32_t journal_entries_per_page() const;
  [[nodiscard]] bool is_open(const Zone& z) const {
    return z.state == ZoneState::ImplicitlyOpen ||
           z.state == ZoneState::ExplicitlyOpen;
  }
  /// Transition `zone` into the given open state, shedding the LRU open
  /// zone first when the limit is hit.
  void make_open(std::uint64_t zone, ZoneState state);
  /// Lowest-index Empty data zone, implicitly opened as an append target.
  std::uint64_t allocate_append_zone();
  /// Append mechanics shared by host appends and reclaim copies: open the
  /// zone as needed, land at the write pointer, install the mapping.
  flash::Ppn do_append(std::uint64_t zone, flash::Lpn lpn);
  /// Append for the device's own machinery (reclaim copy-forward).
  flash::Ppn append_internal(flash::Lpn lpn);
  void install_mapping(flash::Lpn lpn, flash::Ppn ppn);
  void invalidate(flash::Lpn lpn);
  void trim_one(flash::Lpn lpn);
  void journal_trim(flash::Lpn lpn, std::uint64_t seq);
  void fold_checkpoint();
  void maybe_fold();
  void reset_zone_internal(std::uint64_t zone);
  /// Shared zone walk: reclaim and retirement copy a victim's live extents
  /// forward the same way, walking the valid-page bitmap instead of probing
  /// p2l_ across the whole write-pointer prefix.
  void copy_forward_live(std::uint64_t zone);
  void mark_dirty(std::uint64_t zone) { bit_set(dirty_bits_, zone); }

  ZnsConfig config_;
  std::uint32_t zone_pages_ = 0;
  std::uint64_t logical_pages_ = 0;
  bool mounted_ = true;

  // ---- volatile state (lost on power_loss) ----------------------------
  std::vector<std::optional<flash::Ppn>> l2p_;
  std::vector<std::optional<flash::Lpn>> p2l_;
  std::vector<Zone> zones_;
  std::uint64_t active_zone_;   // host append target
  std::uint64_t reclaim_zone_;  // copy-forward append target
  std::uint32_t free_count_ = 0;   // Empty data zones
  std::uint32_t open_count_ = 0;   // implicit + explicit opens
  std::uint64_t open_stamp_ = 0;   // LRU clock for implicit shedding
  std::uint64_t mapped_count_ = 0;
  std::vector<JournalEntry> journal_buf_;  // trims in the open journal page
  // Hot-path bit indexes (volatile; rebuilt on recover): Empty data zones
  // (allocation), Full zones (reclaim victim selection) and valid pages
  // (copy-forward walks), mirroring the FTL's free/full/valid bitsets.
  std::vector<std::uint64_t> free_bits_;
  std::vector<std::uint64_t> full_bits_;
  std::vector<std::uint64_t> valid_bits_;

  // ---- durable state (survives power_loss) ----------------------------
  std::vector<std::optional<Oob>> media_;  // OOB of every programmed page
  // Per-zone durable summaries (the "zone header"): highest program
  // sequence (cleared on reset; max > horizon iff any page is newer) and
  // the programmed-prefix length the write pointer rebuilds from.  Remount
  // consults these in O(zones) instead of scanning page OOB.
  std::vector<std::uint64_t> zone_max_seq_;
  std::vector<std::uint32_t> zone_programmed_;
  // Zones touched (programmed/reset/retired) since the last checkpoint
  // fold: the scope of incremental remount verification.
  std::vector<std::uint64_t> dirty_bits_;
  std::vector<JournalEntry> journal_;      // trim records on programmed pages
  std::vector<std::optional<flash::Ppn>> checkpoint_;
  std::uint64_t checkpoint_seq_ = 0;
  std::uint64_t checkpoint_pages_ = 0;
  std::uint64_t seq_ = 0;  // global update sequence (appends + trims)
  std::uint64_t appends_since_fold_ = 0;
  std::uint32_t journal_pages_since_fold_ = 0;
  std::uint64_t meta_pages_live_ = 0;  // journal+checkpoint pages not recycled
  std::vector<char> retired_;          // durable offline-zone table
  std::uint32_t retired_count_ = 0;

  // Remount scratch, reused across power-cycle sweeps (see Ftl).
  std::vector<std::optional<std::pair<flash::Ppn, std::uint64_t>>>
      recover_scratch_;

  ZnsStats stats_;
};

}  // namespace isp::zns
