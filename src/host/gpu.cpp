#include "host/gpu.hpp"

#include "common/error.hpp"

namespace isp::host {

Gpu::Gpu(GpuConfig config) : config_(config) {
  ISP_CHECK(config_.speedup_vs_host_core > 0.0,
            "GPU speedup must be positive");
}

Seconds Gpu::compute_seconds(Seconds work,
                             std::uint32_t parallel_width) const {
  if (parallel_width < config_.min_parallel_width) {
    // A serial region on a GPU runs on what amounts to one slow lane;
    // model it as a single host core plus launch cost (never attractive).
    return config_.launch_overhead + work;
  }
  return config_.launch_overhead + work / config_.speedup_vs_host_core;
}

}  // namespace isp::host
