// GPU compute-unit model (future-work exploration).
//
// The paper's platform carries an NVIDIA RTX 2080 (§IV-A) and its framing —
// "heterogeneous computing platforms", "migrate tasks among different
// compute units" (§VI) — points past the host/CSD pair.  This model is the
// third unit for the analytic three-way placement explorer
// (plan/three_way.hpp): massively parallel compute behind the same
// bandwidth-constrained system interconnect, so a GPU-placed task pays the
// raw-input trip over the link exactly like the host does, then computes at
// a large multiple of a host core — *if* the line parallelises.
//
// Deliberately not wired into the execution engine: the paper's system is
// host+CSD, and the reproduction keeps its engine faithful.  The explorer
// answers "what would a third unit change about the placements?" as
// analysis.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace isp::host {

struct GpuConfig {
  /// Aggregate throughput of the device relative to one host core for a
  /// fully data-parallel kernel (RTX-2080-class vs one Zen2 core, memory-
  /// bandwidth-bound workloads included in the average).
  double speedup_vs_host_core = 40.0;
  /// Kernel-launch and driver overhead per offloaded line.
  Seconds launch_overhead = Seconds{20e-6};
  /// Minimum CSE-style parallel width a line needs before the GPU helps at
  /// all; below this the line is effectively serial and the GPU loses to a
  /// single host core.
  std::uint32_t min_parallel_width = 4;
};

class Gpu {
 public:
  Gpu() : Gpu(GpuConfig{}) {}
  explicit Gpu(GpuConfig config);

  [[nodiscard]] const GpuConfig& config() const { return config_; }

  /// Wall time of `work` host-core-seconds for a line whose data-parallel
  /// width is `parallel_width` (the line's csd_threads is the available
  /// proxy: firmware-parallelisable lines are GPU-parallelisable).
  [[nodiscard]] Seconds compute_seconds(Seconds work,
                                        std::uint32_t parallel_width) const;

 private:
  GpuConfig config_;
};

}  // namespace isp::host
