// Host processor model (the paper's Ryzen 7 3700X, §IV-A).
//
// The canonical unit of compute inside the engine is "work seconds": the
// time one host core at full clock needs for a line's cycles.  Host and CSE
// then differ only in how many effective host-core-equivalents they apply.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace isp::host {

struct HostCpuConfig {
  Hertz clock = ghz(3.6);   // base clock of the 3700X
  std::uint32_t cores = 8;  // octa-core
};

class HostCpu {
 public:
  HostCpu() : HostCpu(HostCpuConfig{}) {}
  explicit HostCpu(HostCpuConfig config);

  [[nodiscard]] const HostCpuConfig& config() const { return config_; }

  /// Convert a cost-model cycle count into single-core work seconds.
  [[nodiscard]] Seconds work_seconds(Cycles cycles) const {
    return cycles / config_.clock;
  }

  /// Wall time of `work` spread over `threads` host cores.
  [[nodiscard]] Seconds compute_seconds(Seconds work,
                                        std::uint32_t threads) const;

 private:
  HostCpuConfig config_;
};

}  // namespace isp::host
