#include "host/cpu.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace isp::host {

HostCpu::HostCpu(HostCpuConfig config) : config_(config) {
  ISP_CHECK(config_.clock.value() > 0.0, "host clock must be positive");
  ISP_CHECK(config_.cores > 0, "host needs at least one core");
}

Seconds HostCpu::compute_seconds(Seconds work, std::uint32_t threads) const {
  ISP_CHECK(threads > 0, "compute needs at least one thread");
  const auto usable = std::min(threads, config_.cores);
  return work / static_cast<double>(usable);
}

}  // namespace isp::host
