// Least-squares complexity-curve fitting (§III-A).
//
// ActivePy runs four sample sizes (F = 2^-10 … 2^-7), then predicts each
// line's execution time and output volume at the raw input size by selecting
// the closest fit among O(1), O(n), O(n log n), O(n²), O(n³).  The fit is
// y = a + b·g(n) solved in closed form per class; the class with the lowest
// relative RMSE wins.  Extrapolating 2^7–2^10× beyond the samples with only
// five candidate shapes is exactly as fallible as the paper reports (§V:
// ~9% geometric-mean volume error, with CSR construction the pathological
// case), and that fallibility is load-bearing for the monitoring story.
#pragma once

#include <span>

#include "ir/complexity.hpp"

namespace isp::fit {

struct FitResult {
  ir::ComplexityClass cls = ir::ComplexityClass::O1;
  double a = 0.0;          // intercept
  double b = 0.0;          // slope on basis(cls, n)
  double rmse_rel = 0.0;   // RMSE / mean(|y|), the selection criterion

  /// Predicted y at n, clamped to be non-negative.
  [[nodiscard]] double predict(double n) const;
};

/// Fit y = a + b·g(n) for one class.
[[nodiscard]] FitResult fit_class(ir::ComplexityClass cls,
                                  std::span<const double> n,
                                  std::span<const double> y);

/// Fit all five classes and return the best by relative RMSE.
[[nodiscard]] FitResult fit_best(std::span<const double> n,
                                 std::span<const double> y);

}  // namespace isp::fit
