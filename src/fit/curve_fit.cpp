#include "fit/curve_fit.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace isp::fit {

double FitResult::predict(double n) const {
  const double y = a + b * ir::basis(cls, n);
  return y > 0.0 ? y : 0.0;
}

FitResult fit_class(ir::ComplexityClass cls, std::span<const double> n,
                    std::span<const double> y) {
  ISP_CHECK(n.size() == y.size(), "n/y size mismatch");
  ISP_CHECK(n.size() >= 2, "need at least two sample points");

  const auto m = static_cast<double>(n.size());
  double sg = 0.0, sy = 0.0, sgg = 0.0, sgy = 0.0;
  for (std::size_t i = 0; i < n.size(); ++i) {
    const double g = ir::basis(cls, n[i]);
    sg += g;
    sy += y[i];
    sgg += g * g;
    sgy += g * y[i];
  }

  FitResult out;
  out.cls = cls;
  const double denom = m * sgg - sg * sg;
  if (std::abs(denom) < 1e-30) {
    // Degenerate basis over these points (e.g. O(1)): intercept-only fit.
    out.b = 0.0;
    out.a = sy / m;
  } else {
    out.b = (m * sgy - sg * sy) / denom;
    out.a = (sy - out.b * sg) / m;
  }

  double sse = 0.0, mag = 0.0;
  for (std::size_t i = 0; i < n.size(); ++i) {
    const double r = y[i] - (out.a + out.b * ir::basis(cls, n[i]));
    sse += r * r;
    mag += std::abs(y[i]);
  }
  const double rmse = std::sqrt(sse / m);
  const double mean_mag = mag / m;
  out.rmse_rel = mean_mag > 0.0 ? rmse / mean_mag
                                : (rmse > 0.0 ? rmse : 0.0);
  return out;
}

FitResult fit_best(std::span<const double> n, std::span<const double> y) {
  // Classes are tried lowest-order first, and a higher-order class must beat
  // the incumbent by a clear margin to be selected (Occam selection).  With
  // only four sample points, quantisation and jitter can make O(n²)/O(n³)
  // look marginally better on the samples while extrapolating catastrophically
  // three orders of magnitude out — the margin keeps the fitter on the
  // simplest shape the evidence actually supports.
  constexpr double kRequiredImprovement = 0.75;
  FitResult best;
  double best_err = std::numeric_limits<double>::infinity();
  for (const auto cls : ir::kAllComplexityClasses) {
    const auto candidate = fit_class(cls, n, y);
    // A fit whose slope is negative extrapolates to nonsense at raw size;
    // accept it only if nothing non-degenerate does better (handles truly
    // decreasing y, e.g. constant-size outputs with jitter).
    const double penalty = candidate.b < 0.0 ? 1e6 : 0.0;
    if (candidate.rmse_rel + penalty < best_err * kRequiredImprovement) {
      best_err = candidate.rmse_rel + penalty;
      best = candidate;
    }
  }
  return best;
}

}  // namespace isp::fit
