// Deterministic pseudo-random number generation.
//
// Everything in the reproduction that involves randomness — dataset
// generation, cost-model jitter, contention schedules — draws from Rng so a
// given seed reproduces a run bit-for-bit.  xoshiro256** with splitmix64
// seeding; no dependence on std::random_device or platform distributions
// (std:: distributions are not cross-implementation stable, ours are).
#pragma once

#include <cstdint>
#include <vector>

namespace isp {

/// xoshiro256** generator with deterministic splitmix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic, caches the pair).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Zipf-distributed integer in [0, n) with exponent s (via rejection
  /// sampling against the Zipf envelope; deterministic).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// A derived generator whose stream is independent of this one.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

  /// Deterministic shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_u64(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// splitmix64 single step — also useful as a cheap stateless hash for
/// deterministic per-item jitter.
std::uint64_t splitmix64(std::uint64_t x);

/// Deterministic hash of x into a double in [0, 1).
double hash_unit(std::uint64_t x);

}  // namespace isp
