// Strong unit types shared by every subsystem.
//
// All device timing in the simulator is expressed in seconds of *virtual*
// time (double precision), and all data volumes in bytes.  Equation 1 of the
// paper mixes the two through bandwidths, so both get thin strong types to
// keep the arithmetic honest: you cannot add bytes to seconds, and dividing
// Bytes by BytesPerSecond yields Seconds.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace isp {

/// A count of bytes (data volume). Wraps an unsigned 64-bit count.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t count) : count_(count) {}

  [[nodiscard]] constexpr std::uint64_t count() const { return count_; }
  [[nodiscard]] constexpr double as_double() const {
    return static_cast<double>(count_);
  }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes other) {
    count_ += other.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) {
    count_ -= other.count_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.count_ + b.count_};
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.count_ - b.count_};
  }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) {
    return Bytes{a.count_ * k};
  }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes a) { return a * k; }
  /// Scale by a real factor (used by sampling factors F = 2^-10 .. 2^-7).
  friend constexpr Bytes scale(Bytes a, double f) {
    return Bytes{static_cast<std::uint64_t>(a.as_double() * f)};
  }

 private:
  std::uint64_t count_ = 0;
};

constexpr Bytes operator""_B(unsigned long long v) { return Bytes{v}; }
constexpr Bytes operator""_KiB(unsigned long long v) { return Bytes{v << 10}; }
constexpr Bytes operator""_MiB(unsigned long long v) { return Bytes{v << 20}; }
constexpr Bytes operator""_GiB(unsigned long long v) { return Bytes{v << 30}; }

/// Decimal gigabytes, matching the paper's "GB/sec" figures.
constexpr Bytes gigabytes(double v) {
  return Bytes{static_cast<std::uint64_t>(v * 1e9)};
}

/// A span of virtual time, in seconds.
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double v) : v_(v) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr auto operator<=>(const Seconds&) const = default;

  constexpr Seconds& operator+=(Seconds other) {
    v_ += other.v_;
    return *this;
  }
  constexpr Seconds& operator-=(Seconds other) {
    v_ -= other.v_;
    return *this;
  }
  friend constexpr Seconds operator+(Seconds a, Seconds b) {
    return Seconds{a.v_ + b.v_};
  }
  friend constexpr Seconds operator-(Seconds a, Seconds b) {
    return Seconds{a.v_ - b.v_};
  }
  friend constexpr Seconds operator*(Seconds a, double k) {
    return Seconds{a.v_ * k};
  }
  friend constexpr Seconds operator*(double k, Seconds a) { return a * k; }
  friend constexpr Seconds operator/(Seconds a, double k) {
    return Seconds{a.v_ / k};
  }
  friend constexpr double operator/(Seconds a, Seconds b) {
    return a.v_ / b.v_;
  }

  static constexpr Seconds zero() { return Seconds{0.0}; }
  static constexpr Seconds infinity() {
    return Seconds{std::numeric_limits<double>::infinity()};
  }

 private:
  double v_ = 0.0;
};

constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_ms(long double v) {
  return Seconds{static_cast<double>(v) * 1e-3};
}
constexpr Seconds operator""_us(long double v) {
  return Seconds{static_cast<double>(v) * 1e-6};
}
constexpr Seconds operator""_ns(long double v) {
  return Seconds{static_cast<double>(v) * 1e-9};
}

/// A transfer or processing rate in bytes per second of virtual time.
class BytesPerSecond {
 public:
  constexpr BytesPerSecond() = default;
  constexpr explicit BytesPerSecond(double v) : v_(v) {}

  [[nodiscard]] constexpr double value() const { return v_; }
  constexpr auto operator<=>(const BytesPerSecond&) const = default;

  friend constexpr Seconds operator/(Bytes b, BytesPerSecond r) {
    return Seconds{b.as_double() / r.v_};
  }
  friend constexpr BytesPerSecond operator*(BytesPerSecond r, double k) {
    return BytesPerSecond{r.v_ * k};
  }
  friend constexpr BytesPerSecond operator*(double k, BytesPerSecond r) {
    return r * k;
  }

 private:
  double v_ = 0.0;
};

/// Decimal GB/s, matching the paper's link/NAND bandwidth figures.
constexpr BytesPerSecond gb_per_s(double v) { return BytesPerSecond{v * 1e9}; }

/// Virtual-time instant measured from simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(double seconds) : v_(seconds) {}

  [[nodiscard]] constexpr double seconds() const { return v_; }
  constexpr auto operator<=>(const SimTime&) const = default;

  friend constexpr SimTime operator+(SimTime t, Seconds d) {
    return SimTime{t.v_ + d.value()};
  }
  friend constexpr Seconds operator-(SimTime a, SimTime b) {
    return Seconds{a.v_ - b.v_};
  }
  constexpr SimTime& operator+=(Seconds d) {
    v_ += d.value();
    return *this;
  }

  static constexpr SimTime zero() { return SimTime{0.0}; }
  static constexpr SimTime infinity() {
    return SimTime{std::numeric_limits<double>::infinity()};
  }

 private:
  double v_ = 0.0;
};

/// Processor cycle counts used by the cost models and IPC bookkeeping.
class Cycles {
 public:
  constexpr Cycles() = default;
  constexpr explicit Cycles(double v) : v_(v) {}

  [[nodiscard]] constexpr double value() const { return v_; }
  constexpr auto operator<=>(const Cycles&) const = default;

  friend constexpr Cycles operator+(Cycles a, Cycles b) {
    return Cycles{a.v_ + b.v_};
  }
  friend constexpr Cycles operator*(Cycles a, double k) {
    return Cycles{a.v_ * k};
  }
  friend constexpr Cycles operator*(double k, Cycles a) { return a * k; }
  constexpr Cycles& operator+=(Cycles other) {
    v_ += other.v_;
    return *this;
  }

 private:
  double v_ = 0.0;
};

/// A clock rate; Cycles / Hertz = Seconds.
class Hertz {
 public:
  constexpr Hertz() = default;
  constexpr explicit Hertz(double v) : v_(v) {}
  [[nodiscard]] constexpr double value() const { return v_; }
  constexpr auto operator<=>(const Hertz&) const = default;

  friend constexpr Seconds operator/(Cycles c, Hertz h) {
    return Seconds{c.value() / h.v_};
  }

 private:
  double v_ = 0.0;
};

constexpr Hertz ghz(double v) { return Hertz{v * 1e9}; }

}  // namespace isp
