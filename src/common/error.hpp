// Error handling: precondition/invariant checks that throw isp::Error.
//
// The library is exception-based (per the C++ Core Guidelines): ISP_CHECK is
// for conditions that depend on caller input or device state and stays on in
// release builds; ISP_DCHECK is for internal invariants and compiles out in
// NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace isp {

/// Base error type for every failure raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace isp

#define ISP_CHECK(cond, msg)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::isp::detail::raise_check_failure(#cond, __FILE__, __LINE__,      \
                                         (std::ostringstream{} << msg)  \
                                             .str());                    \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define ISP_DCHECK(cond, msg) \
  do {                        \
  } while (false)
#else
#define ISP_DCHECK(cond, msg) ISP_CHECK(cond, msg)
#endif
