// The repository's one FNV-1a implementation.
//
// Every determinism gate in the stack — the recovery sweep's output digests
// (PR 2), the metrics registry / timeline digests (PR 5), the serving
// report digest (PR 4/6) and the hot-path memo-cache keys (PR 7) — folds
// state into the same 64-bit FNV-1a stream.  Until PR 7 each subsystem
// carried a private copy of the constants and the byte fold; this header is
// the shared one, bit-compatible with all of them:
//
//   * fnv1a(h, u64)    folds the word little-endian, byte by byte;
//   * fnv1a_bytes      folds a raw byte range (the recovery convention —
//                      no length prefix);
//   * fnv1a(h, string) folds the length as a u64 first, then the bytes
//                      (the obs convention — strings of different lengths
//                      sharing a prefix must not collide trivially).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace isp {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Fold one 64-bit word into an FNV-1a digest, byte by byte.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

/// Fold a raw byte range into an FNV-1a digest (no length prefix).
[[nodiscard]] inline std::uint64_t fnv1a_bytes(std::uint64_t h,
                                               const void* data,
                                               std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Fold a string into an FNV-1a digest: the length as a u64, then the bytes.
[[nodiscard]] inline std::uint64_t fnv1a(std::uint64_t h,
                                         const std::string& s) {
  h = fnv1a(h, static_cast<std::uint64_t>(s.size()));
  return fnv1a_bytes(h, s.data(), s.size());
}

/// The bit pattern of a double, for hashing exact values.
[[nodiscard]] inline std::uint64_t double_bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

}  // namespace isp
