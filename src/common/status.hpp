// Typed, non-throwing operation status for device fault paths.
//
// The library's precondition violations throw isp::Error (error.hpp), but
// *expected* device failures — an uncorrectable ECC read, an NVMe command
// that exhausted its retries, a crashed CSE core — are part of normal
// operation under fault injection and must never unwind the stack: the
// recovery ladder (retry → escalate → degrade) handles them.  Status is the
// typed result those paths return instead of hanging or throwing.
#pragma once

#include <cstdint>
#include <string_view>

namespace isp {

enum class StatusCode : std::uint8_t {
  Ok = 0,
  Timeout,         // command-level timeout (NVMe)
  DataError,       // uncorrectable ECC / media failure
  DeviceCrash,     // CSE core crash / firmware failure
  RetryExhausted,  // bounded retry policy ran out of attempts
  Cancelled,       // dropped by the issuer before completion
  Overloaded,      // admission control: per-tenant queue is full (serve/)
  DeadlineExceeded,  // job cannot start before its SLO deadline (serve/)
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::Ok:
      return "ok";
    case StatusCode::Timeout:
      return "timeout";
    case StatusCode::DataError:
      return "data-error";
    case StatusCode::DeviceCrash:
      return "device-crash";
    case StatusCode::RetryExhausted:
      return "retry-exhausted";
    case StatusCode::Cancelled:
      return "cancelled";
    case StatusCode::Overloaded:
      return "overloaded";
    case StatusCode::DeadlineExceeded:
      return "deadline-exceeded";
  }
  return "?";
}

/// Value-type status: code plus the retry attempts consumed reaching it.
class Status {
 public:
  constexpr Status() = default;
  constexpr explicit Status(StatusCode code, std::uint32_t attempts = 0)
      : code_(code), attempts_(attempts) {}

  static constexpr Status ok() { return Status{}; }

  [[nodiscard]] constexpr bool is_ok() const {
    return code_ == StatusCode::Ok;
  }
  [[nodiscard]] constexpr StatusCode code() const { return code_; }
  [[nodiscard]] constexpr std::uint32_t attempts() const { return attempts_; }
  [[nodiscard]] constexpr std::string_view message() const {
    return to_string(code_);
  }

  constexpr bool operator==(const Status&) const = default;

 private:
  StatusCode code_ = StatusCode::Ok;
  std::uint32_t attempts_ = 0;
};

}  // namespace isp
