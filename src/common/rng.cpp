#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace isp {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double hash_unit(std::uint64_t x) {
  // 53 high bits -> [0, 1).
  return static_cast<double>(splitmix64(x) >> 11) * 0x1.0p-53;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s = splitmix64(s);
    word = s;
  }
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  ISP_CHECK(lo <= hi, "empty range");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = span * (~0ULL / span);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return lo + x % span;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  ISP_CHECK(n > 0, "zipf over empty domain");
  if (n == 1) return 0;
  // Inverse-CDF approximation over the continuous Zipf envelope
  // (Gray et al., "Quickly generating billion-record synthetic databases").
  const double nd = static_cast<double>(n);
  if (s == 1.0) {
    const double u = next_double();
    const double x = std::exp(u * std::log(nd));
    return static_cast<std::uint64_t>(x) - 1;
  }
  const double u = next_double();
  const double one_minus_s = 1.0 - s;
  const double x =
      std::pow(u * (std::pow(nd, one_minus_s) - 1.0) + 1.0, 1.0 / one_minus_s);
  auto rank = static_cast<std::uint64_t>(x);
  if (rank >= n) rank = n - 1;
  return rank;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  return Rng{splitmix64(state_[0] ^ splitmix64(stream_id))};
}

}  // namespace isp
