// Minimal leveled logger.
//
// Off (Warn level) by default so tests and benches stay quiet; the runtime
// raises verbosity when the user asks for a trace of sampling / planning /
// migration decisions.
#pragma once

#include <sstream>
#include <string>

namespace isp {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Off = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace isp

#define ISP_LOG(level, msg)                                            \
  do {                                                                 \
    if (static_cast<int>(level) >= static_cast<int>(::isp::log_level())) { \
      ::isp::detail::log_emit(level,                                   \
                              (std::ostringstream{} << msg).str());    \
    }                                                                  \
  } while (false)

#define ISP_LOG_INFO(msg) ISP_LOG(::isp::LogLevel::Info, msg)
#define ISP_LOG_DEBUG(msg) ISP_LOG(::isp::LogLevel::Debug, msg)
#define ISP_LOG_TRACE(msg) ISP_LOG(::isp::LogLevel::Trace, msg)
#define ISP_LOG_WARN(msg) ISP_LOG(::isp::LogLevel::Warn, msg)
