// Flat word-packed bitsets for the storage data plane's hot indexes.
//
// The FTL and ZNS backends keep three kinds of per-page / per-block state
// that their hot loops scan: which blocks are free (allocation), which are
// full (GC/reclaim victim selection), and which physical pages hold valid
// data (relocation walks).  Scanning vectors of structs for those answers is
// O(pages); packing each predicate into a bitset makes every scan a ctz /
// popcount word walk.  These helpers are the shared word mechanics so both
// backends index the same way.
//
// All functions treat the bitset as a plain std::vector<std::uint64_t> the
// caller sizes via bits_resize; out-of-range bits are the caller's bug
// (checked only in debug builds to keep the hot path branch-free).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace isp {

inline constexpr std::uint64_t kBitsPerWord = 64;

/// Size `words` to hold `bits` bits, zero-initialised.
inline void bits_resize(std::vector<std::uint64_t>& words,
                        std::uint64_t bits) {
  words.assign((bits + kBitsPerWord - 1) / kBitsPerWord, 0);
}

/// Clear every bit without reallocating.
inline void bits_clear_all(std::vector<std::uint64_t>& words) {
  for (auto& w : words) w = 0;
}

[[nodiscard]] inline bool bit_test(const std::vector<std::uint64_t>& words,
                                   std::uint64_t i) {
  ISP_DCHECK(i / kBitsPerWord < words.size(), "bit index out of range");
  return (words[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1u;
}

inline void bit_set(std::vector<std::uint64_t>& words, std::uint64_t i) {
  ISP_DCHECK(i / kBitsPerWord < words.size(), "bit index out of range");
  words[i / kBitsPerWord] |= std::uint64_t{1} << (i % kBitsPerWord);
}

inline void bit_clear(std::vector<std::uint64_t>& words, std::uint64_t i) {
  ISP_DCHECK(i / kBitsPerWord < words.size(), "bit index out of range");
  words[i / kBitsPerWord] &= ~(std::uint64_t{1} << (i % kBitsPerWord));
}

/// Set every bit in [begin, end) with whole-word masks — the bulk twin of
/// bit_set for contiguous freshly-programmed page runs.
inline void bits_set_range(std::vector<std::uint64_t>& words,
                           std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  ISP_DCHECK((end - 1) / kBitsPerWord < words.size(),
             "bit range out of bounds");
  std::uint64_t wi = begin / kBitsPerWord;
  const std::uint64_t last_wi = (end - 1) / kBitsPerWord;
  std::uint64_t mask = ~std::uint64_t{0} << (begin % kBitsPerWord);
  if (wi == last_wi) {
    if (end % kBitsPerWord != 0) {
      mask &= (std::uint64_t{1} << (end % kBitsPerWord)) - 1;
    }
    words[wi] |= mask;
    return;
  }
  words[wi] |= mask;
  for (++wi; wi < last_wi; ++wi) words[wi] = ~std::uint64_t{0};
  if (end % kBitsPerWord != 0) {
    words[last_wi] |= (std::uint64_t{1} << (end % kBitsPerWord)) - 1;
  } else {
    words[last_wi] = ~std::uint64_t{0};
  }
}

/// Lowest set bit index in [from, limit), or `limit` if none.  The ctz walk
/// that replaces linear free-block / free-page scans.
[[nodiscard]] inline std::uint64_t bits_find_first(
    const std::vector<std::uint64_t>& words, std::uint64_t from,
    std::uint64_t limit) {
  if (from >= limit) return limit;
  std::uint64_t wi = from / kBitsPerWord;
  std::uint64_t w = words[wi] & (~std::uint64_t{0} << (from % kBitsPerWord));
  while (true) {
    if (w != 0) {
      const std::uint64_t i =
          wi * kBitsPerWord +
          static_cast<std::uint64_t>(std::countr_zero(w));
      return i < limit ? i : limit;
    }
    ++wi;
    if (wi * kBitsPerWord >= limit) return limit;
    w = words[wi];
  }
}

/// Popcount of the bits in [begin, end).
[[nodiscard]] inline std::uint64_t bits_count(
    const std::vector<std::uint64_t>& words, std::uint64_t begin,
    std::uint64_t end) {
  std::uint64_t total = 0;
  std::uint64_t wi = begin / kBitsPerWord;
  const std::uint64_t we = end / kBitsPerWord;
  if (begin >= end) return 0;
  std::uint64_t first = words[wi] & (~std::uint64_t{0} << (begin % kBitsPerWord));
  if (wi == we) {
    first &= (std::uint64_t{1} << (end % kBitsPerWord)) - 1;
    return static_cast<std::uint64_t>(std::popcount(first));
  }
  total += static_cast<std::uint64_t>(std::popcount(first));
  for (++wi; wi < we; ++wi) {
    total += static_cast<std::uint64_t>(std::popcount(words[wi]));
  }
  if (end % kBitsPerWord != 0) {
    const std::uint64_t last =
        words[we] & ((std::uint64_t{1} << (end % kBitsPerWord)) - 1);
    total += static_cast<std::uint64_t>(std::popcount(last));
  }
  return total;
}

/// Invoke fn(i) for every set bit in [begin, end), ascending — the same
/// visit order as the page-by-page loops this replaces.  Each word is
/// snapshotted before iterating, so fn may clear the bit it was called for
/// (relocation walks do) and may set bits outside [begin, end) without
/// perturbing the walk.
template <typename Fn>
void bits_for_each(const std::vector<std::uint64_t>& words,
                   std::uint64_t begin, std::uint64_t end, Fn&& fn) {
  if (begin >= end) return;
  std::uint64_t wi = begin / kBitsPerWord;
  const std::uint64_t last_wi = (end - 1) / kBitsPerWord;
  for (; wi <= last_wi; ++wi) {
    std::uint64_t w = words[wi];
    if (wi == begin / kBitsPerWord) {
      w &= ~std::uint64_t{0} << (begin % kBitsPerWord);
    }
    if (wi == last_wi && end % kBitsPerWord != 0) {
      w &= (std::uint64_t{1} << (end % kBitsPerWord)) - 1;
    }
    while (w != 0) {
      const auto bit = static_cast<std::uint64_t>(std::countr_zero(w));
      fn(wi * kBitsPerWord + bit);
      w &= w - 1;
    }
  }
}

}  // namespace isp
