#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace isp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::cerr << "[isp:" << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace isp
